package parallel

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachChunkCoversEveryIndexOnce sweeps awkward sizes — empty, single
// element, fewer elements than workers, non-divisible remainders — across
// worker counts and asserts every index in [0, n) is visited exactly once.
func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 100, 1023}
	chunkSizes := []int{1, 2, 3, 7, 8, 16, 1000}
	workerCounts := []int{1, 2, 3, 4, 8}
	for _, n := range sizes {
		for _, cs := range chunkSizes {
			for _, w := range workerCounts {
				visits := make([]int32, n)
				New(w).ForEachChunk(n, cs, func(worker, lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("n=%d cs=%d w=%d: bad chunk [%d,%d)", n, cs, w, lo, hi)
						return
					}
					if lo%cs != 0 {
						t.Errorf("n=%d cs=%d w=%d: chunk start %d not aligned", n, cs, w, lo)
					}
					if hi-lo > cs {
						t.Errorf("n=%d cs=%d w=%d: chunk [%d,%d) larger than chunk size", n, cs, w, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d cs=%d w=%d: index %d visited %d times", n, cs, w, i, v)
					}
				}
			}
		}
	}
}

// TestForEachChunkPartitionIndependentOfWorkers asserts the determinism
// contract: the set of chunk boundaries must be a function of (n, chunkSize)
// only, identical at every worker count.
func TestForEachChunkPartitionIndependentOfWorkers(t *testing.T) {
	type span struct{ lo, hi int }
	partition := func(workers, n, cs int) []span {
		var mu sync.Mutex
		var spans []span
		New(workers).ForEachChunk(n, cs, func(_, lo, hi int) {
			mu.Lock()
			spans = append(spans, span{lo, hi})
			mu.Unlock()
		})
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		return spans
	}
	for _, n := range []int{1, 5, 16, 33, 100} {
		for _, cs := range []int{1, 4, 8, 50} {
			ref := partition(1, n, cs)
			for _, w := range []int{2, 3, 8} {
				got := partition(w, n, cs)
				if len(got) != len(ref) {
					t.Fatalf("n=%d cs=%d: %d chunks at w=%d, %d at w=1", n, cs, len(got), w, len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("n=%d cs=%d w=%d: chunk %d = %v, want %v", n, cs, w, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestForEachCoversEveryIndexOnce is the ForEach analogue of the chunk
// coverage test.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 16, 101} {
		for _, w := range []int{1, 2, 5, 8} {
			visits := make([]int32, n)
			New(w).ForEach(n, func(worker, i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, v)
				}
			}
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got := New(0).Workers(); got != DefaultWorkers() {
		t.Fatalf("New(0).Workers() = %d, want %d", got, DefaultWorkers())
	}
	if got := New(-3).Workers(); got != DefaultWorkers() {
		t.Fatalf("New(-3).Workers() = %d, want %d", got, DefaultWorkers())
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
}

func TestRunInvokesEveryWorkerID(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		seen := make([]int32, w)
		New(w).Run(func(id int) { atomic.AddInt32(&seen[id], 1) })
		for id, v := range seen {
			if v != 1 {
				t.Fatalf("w=%d: worker %d ran %d times", w, id, v)
			}
		}
	}
}

// TestWorkerPanicPropagates asserts a panicking chunk surfaces to the caller
// as a *WorkerPanic carrying the original value, with the pool fully drained
// (no goroutine leak, remaining chunks still complete or are abandoned
// cleanly).
func TestWorkerPanicPropagates(t *testing.T) {
	for _, w := range []int{2, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("w=%d: panic did not propagate", w)
				}
				wp, ok := r.(*WorkerPanic)
				if !ok {
					t.Fatalf("w=%d: recovered %T, want *WorkerPanic", w, r)
				}
				if wp.Value != "boom" {
					t.Fatalf("w=%d: panic value %v", w, wp.Value)
				}
				if len(wp.Stack) == 0 {
					t.Fatalf("w=%d: no stack captured", w)
				}
				if wp.Error() == "" {
					t.Fatalf("w=%d: empty Error()", w)
				}
			}()
			New(w).ForEachChunk(64, 4, func(_, lo, hi int) {
				if lo == 32 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachChunkRejectsBadChunkSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("chunkSize 0 accepted")
		}
	}()
	New(2).ForEachChunk(10, 0, func(_, _, _ int) {})
}

// TestForEachChunkSequentialOrder pins the single-worker guarantee chunks
// run in increasing index order, which the trainer's reduction relies on.
func TestForEachChunkSequentialOrder(t *testing.T) {
	var los []int
	New(1).ForEachChunk(50, 8, func(_, lo, hi int) { los = append(los, lo) })
	for i := 1; i < len(los); i++ {
		if los[i] <= los[i-1] {
			t.Fatalf("chunks out of order at single worker: %v", los)
		}
	}
}
