package parallel

import (
	"sync/atomic"
	"testing"

	"enld/internal/obs"
)

// TestInstrumentCountsChunks: every executed chunk is counted, at any worker
// count, and the busy gauge returns to zero once the pool drains.
func TestInstrumentCountsChunks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		p := New(workers).Instrument(reg, "test")
		var visited int64
		p.ForEachChunk(100, 7, func(worker, lo, hi int) {
			atomic.AddInt64(&visited, int64(hi-lo))
		})
		if visited != 100 {
			t.Fatalf("workers=%d visited %d indices, want 100", workers, visited)
		}
		tasks := reg.Counter("enld_pool_tasks_total",
			"Chunks executed by the worker pool, by pool name.",
			obs.Label{Key: "pool", Value: "test"})
		if got, want := tasks.Value(), uint64(15); got != want { // ceil(100/7)
			t.Fatalf("workers=%d tasks = %d, want %d", workers, got, want)
		}
		busy := reg.Gauge("enld_pool_busy_workers",
			"Workers currently executing, by pool name.",
			obs.Label{Key: "pool", Value: "test"})
		if got := busy.Value(); got != 0 {
			t.Fatalf("workers=%d busy gauge = %v after drain, want 0", workers, got)
		}
	}
}

// TestInstrumentNilRegistry: an uninstrumented pool and a nil-registry
// instrumented pool behave identically to a plain pool.
func TestInstrumentNilRegistry(t *testing.T) {
	p := New(2).Instrument(nil, "ignored")
	var visited int64
	p.ForEachChunk(10, 3, func(worker, lo, hi int) {
		atomic.AddInt64(&visited, int64(hi-lo))
	})
	if visited != 10 {
		t.Fatalf("visited %d indices, want 10", visited)
	}
	p.Run(func(id int) {})
}

// TestBusyGaugeDuringRun: the busy gauge reflects workers inside a Run body.
func TestBusyGaugeDuringRun(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(3).Instrument(reg, "busy")
	busy := reg.Gauge("enld_pool_busy_workers",
		"Workers currently executing, by pool name.",
		obs.Label{Key: "pool", Value: "busy"})
	var peak int64
	p.Run(func(id int) {
		if v := int64(busy.Value()); v > atomic.LoadInt64(&peak) {
			atomic.StoreInt64(&peak, v)
		}
	})
	if got := busy.Value(); got != 0 {
		t.Fatalf("busy gauge = %v after Run, want 0", got)
	}
	if atomic.LoadInt64(&peak) < 1 {
		t.Fatal("busy gauge never observed a running worker")
	}
}
