// Package parallel provides the deterministic worker-pool core behind every
// data-parallel hot path in this repository: mini-batch gradient computation
// (nn.Trainer), batch inference (nn.Network.EvaluateBatch and friends), the
// k-NN fan-out of contrastive sampling, concurrent experiment execution and
// the lake service's task workers.
//
// The central contract is *static chunking*: ForEachChunk partitions an index
// range into fixed contiguous chunks whose boundaries depend only on the
// range length and the chunk size — never on the worker count. Callers that
// accumulate floating-point state per chunk and reduce the chunks in index
// order therefore obtain bit-identical results at any worker count, which is
// what makes the parallel training, inference and sampling paths provably
// equivalent to their sequential counterparts (see the differential tests in
// internal/nn, internal/sampling and internal/core).
//
// Worker panics are captured and re-raised on the calling goroutine as a
// *WorkerPanic carrying the original value and the worker's stack, so a
// panicking task cannot silently kill a pool goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"enld/internal/obs"
)

// Pool is a reusable fixed-size worker pool. A Pool holds no goroutines
// between calls — each Run/ForEach/ForEachChunk spawns workers for its own
// duration (the calling goroutine always serves as worker 0, so w workers
// cost w-1 goroutine launches, and a single effective worker costs none) —
// so a Pool is cheap to create, safe to share, and safe for concurrent use.
type Pool struct {
	workers int

	// Observability handles, nil unless Instrument was called. Nil handles
	// are no-ops, so the uninstrumented hot path pays nothing.
	tasks *obs.Counter
	busy  *obs.Gauge
}

// DefaultWorkers returns the worker count used when none is requested:
// GOMAXPROCS at call time.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// New returns a pool of the given size. A non-positive size selects
// DefaultWorkers, so callers can plumb a plain "0 = all cores" knob through.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Instrument attaches observability to the pool under the given pool name:
// enld_pool_tasks_total{pool=name} counts executed chunks and
// enld_pool_busy_workers{pool=name} tracks workers currently inside a Run
// body. A nil registry leaves the pool uninstrumented (nil handles are
// no-ops). Returns the pool for chaining:
//
//	pool := parallel.New(workers).Instrument(reg, "train")
func (p *Pool) Instrument(reg *obs.Registry, name string) *Pool {
	p.tasks = reg.Counter("enld_pool_tasks_total",
		"Chunks executed by the worker pool, by pool name.",
		obs.Label{Key: "pool", Value: name})
	p.busy = reg.Gauge("enld_pool_busy_workers",
		"Workers currently executing, by pool name.",
		obs.Label{Key: "pool", Value: name})
	return p
}

// WorkerPanic is the panic value re-raised by a pool call when one of its
// workers panicked. Value is the original panic value and Stack the
// panicking worker's stack trace. When several workers panic, the first
// recovered one wins.
type WorkerPanic struct {
	Value interface{}
	Stack []byte
}

// Error makes the panic value self-describing in logs and test failures.
func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", w.Value, w.Stack)
}

// Run invokes worker(id) once per pool worker, id in [0, Workers()), and
// waits for all of them. It is the building block for callers with their own
// work distribution (e.g. draining a shared channel). The calling goroutine
// participates as worker 0, so a pool of w workers spawns only w-1
// goroutines. A panic in any worker is re-raised as a *WorkerPanic after the
// remaining workers finish.
func (p *Pool) Run(worker func(id int)) {
	if p.workers == 1 {
		p.busy.Add(1)
		defer p.busy.Add(-1)
		worker(0)
		return
	}
	p.runN(p.workers, worker)
}

// runN invokes worker(id) for id in [0, n), n >= 2: ids 1..n-1 on spawned
// goroutines, id 0 on the calling goroutine. Panics from any of them
// (including the caller's own worker) are deferred until every worker has
// finished, then re-raised as a *WorkerPanic.
func (p *Pool) runN(n int, worker func(id int)) {
	var wg sync.WaitGroup
	var once sync.Once
	var wp *WorkerPanic
	rec := func() {
		if r := recover(); r != nil {
			once.Do(func() { wp = &WorkerPanic{Value: r, Stack: debug.Stack()} })
		}
	}
	for id := 1; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rec()
			p.busy.Add(1)
			defer p.busy.Add(-1)
			worker(id)
		}(id)
	}
	func() {
		defer rec()
		p.busy.Add(1)
		defer p.busy.Add(-1)
		worker(0)
	}()
	wg.Wait()
	if wp != nil {
		panic(wp)
	}
}

// ForEachChunk partitions [0, n) into contiguous chunks of chunkSize indices
// (the final chunk may be shorter) and calls fn(worker, lo, hi) once per
// chunk, with worker identifying the executing pool worker for per-worker
// scratch. Chunks are claimed dynamically, so a slow chunk does not stall
// the rest.
//
// The chunk boundaries depend only on n and chunkSize — not on the worker
// count — and with one worker the chunks run in increasing index order.
// Callers that write only chunk-local state (indexed by lo/chunkSize or by
// element index) and reduce per-chunk results in chunk order get results
// that are bit-identical at any pool size. It panics if chunkSize < 1.
//
// Dispatch is adaptive: ForEachChunk never runs more workers than there are
// chunks, never more than GOMAXPROCS (chunk bodies are CPU-bound by
// contract, so extra concurrency on a saturated scheduler is pure dispatch
// overhead — the cause of the historical workers=4 < workers=1 regression on
// single-proc runs), and a single effective worker runs the chunks inline in
// increasing order with no goroutines at all. None of this moves a chunk
// boundary, so results are unaffected.
func (p *Pool) ForEachChunk(n, chunkSize int, fn func(worker, lo, hi int)) {
	if chunkSize < 1 {
		panic("parallel: ForEachChunk with chunkSize < 1")
	}
	if n <= 0 {
		return
	}
	nChunks := (n + chunkSize - 1) / chunkSize
	p.tasks.Add(uint64(nChunks))
	inline := func() {
		for c := 0; c < nChunks; c++ {
			lo := c * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
		}
	}
	if p.workers == 1 || nChunks == 1 {
		inline()
		return
	}
	w := p.workers
	if w > nChunks {
		w = nChunks
	}
	if gmp := runtime.GOMAXPROCS(0); w > gmp {
		w = gmp
	}
	if w == 1 {
		// Single effective worker: no goroutines, but keep the multi-worker
		// pool's panic contract (*WorkerPanic) so callers see one behavior
		// per pool size regardless of GOMAXPROCS.
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*WorkerPanic); ok {
					panic(r)
				}
				panic(&WorkerPanic{Value: r, Stack: debug.Stack()})
			}
		}()
		inline()
		return
	}
	var next int64
	p.runN(w, func(id int) {
		for {
			c := int(atomic.AddInt64(&next, 1)) - 1
			if c >= nChunks {
				return
			}
			lo := c * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			fn(id, lo, hi)
		}
	})
}

// ForEach calls fn(worker, i) for every i in [0, n), distributing indices
// over the pool in contiguous blocks. Unlike ForEachChunk, the block
// boundaries here DO depend on the worker count, so ForEach is only for
// per-index independent work (each index writes its own output slot);
// callers needing order-sensitive reduction must use ForEachChunk.
func (p *Pool) ForEach(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	block := (n + p.workers - 1) / p.workers
	p.ForEachChunk(n, block, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}
