// Package core implements ENLD — the paper's contribution: efficient noisy
// label detection for incremental datasets arriving at a data platform with
// a large inventory.
//
// The package follows the paper's two-stage structure. Stage one
// (Platform/NewPlatform, Algorithm 1 lines 1–3) splits the inventory into a
// training half I_t and a contrastive-candidate half I_c, trains the general
// model θ on I_t with mixup, and estimates the conditional mislabeling
// probability P̃(y* = j | ỹ = i) on I_c (Eq. 3–5). Stage two (ENLD.Detect,
// Algorithms 2–3) serves each incoming incremental dataset with contrastive
// sampling plus fine-grained noisy label detection. Algorithm 4's model
// update lives in modelupdate.go.
package core

import (
	"errors"
	"fmt"
	"time"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/nn"
	"enld/internal/noise"
	"enld/internal/obs"
)

// PlatformConfig controls general-model initialization.
type PlatformConfig struct {
	// Arch selects the network family; empty means SimResNet110.
	Arch    nn.Arch
	Classes int
	// InputDim is the feature-vector length of the task's samples.
	InputDim int

	// Training hyperparameters for the general model.
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// MixupAlpha is the Beta parameter of mixup augmentation; the paper uses
	// 0.2 (applied when positive).
	MixupAlpha float64

	// Workers bounds the data-parallel gradient workers of general-model
	// training (0 = all cores); results are bit-identical at every count
	// (see nn.TrainConfig.Workers).
	Workers int

	// Watchdog enables the numerical-health watchdog (NaN/Inf and
	// loss-divergence detection with checkpoint rollback) for every training
	// run the platform performs — setup and Algorithm-4 model updates alike.
	Watchdog nn.WatchdogConfig

	Seed uint64
}

// DefaultPlatformConfig returns the setup used across the evaluation.
func DefaultPlatformConfig(classes, inputDim int, seed uint64) PlatformConfig {
	return PlatformConfig{
		Arch:        nn.SimResNet110,
		Classes:     classes,
		InputDim:    inputDim,
		Epochs:      30,
		BatchSize:   32,
		LR:          0.01,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		MixupAlpha:  nn.DefaultMixupAlpha,
		Seed:        seed,
	}
}

// Platform is the stateful data-platform side of ENLD: the general model θ,
// the estimated conditional probability P̃, and the inventory halves I_t
// (training) and I_c (contrastive candidates).
type Platform struct {
	Model *nn.Network
	Cond  noise.Conditional
	It    dataset.Set
	Ic    dataset.Set

	Config PlatformConfig

	// SetupTime and SetupMeter record the cost of model initialization —
	// the paper's "setup time", shared by Default, CL and ENLD.
	SetupTime  time.Duration
	SetupMeter cost.Meter

	// Health accumulates watchdog statistics over every training run the
	// platform performed (setup plus model updates). It stays zero (with
	// LastUnhealthyEpoch -1) when Config.Watchdog is disabled.
	Health nn.WatchdogStats

	// Obs, when set, receives metrics and phase spans from every operation
	// the platform performs — general-model training, probability
	// estimation, and each ENLD detection served from this platform. It is
	// runtime wiring, not state: Save/Load do not persist it (a restored
	// platform is unobserved until the caller re-attaches a registry).
	Obs *obs.Registry
}

// NewPlatform performs model_init(I) of Algorithm 1: a uniform random split
// of the inventory into I_t and I_c, general-model training on I_t with
// mixup, and probability estimation on I_c.
func NewPlatform(inventory dataset.Set, cfg PlatformConfig) (*Platform, error) {
	return NewPlatformObserved(inventory, cfg, nil)
}

// NewPlatformObserved is NewPlatform with an observability registry attached
// before any work runs, so setup training and probability estimation are
// already instrumented. A nil registry is equivalent to NewPlatform.
func NewPlatformObserved(inventory dataset.Set, cfg PlatformConfig, reg *obs.Registry) (*Platform, error) {
	if len(inventory) == 0 {
		return nil, errors.New("core: empty inventory")
	}
	if cfg.Classes < 2 || cfg.InputDim < 1 {
		return nil, fmt.Errorf("core: invalid platform dims classes=%d input=%d", cfg.Classes, cfg.InputDim)
	}
	if cfg.Arch == "" {
		cfg.Arch = nn.SimResNet110
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	sw := cost.StartStopwatch()
	p := &Platform{Config: cfg, Health: nn.WatchdogStats{LastUnhealthyEpoch: -1}, Obs: reg}
	rng := mat.NewRNG(cfg.Seed)

	var err error
	p.It, p.Ic, err = dataset.SplitRatio(inventory, 0.5, rng)
	if err != nil {
		return nil, fmt.Errorf("core: inventory split: %w", err)
	}
	p.Model, err = nn.Build(cfg.Arch, cfg.InputDim, cfg.Classes, rng.Split())
	if err != nil {
		return nil, err
	}
	if err := p.trainGeneral(p.Model, p.It, rng.Uint64()); err != nil {
		return nil, err
	}
	if err := p.estimate(); err != nil {
		return nil, err
	}
	p.SetupTime = sw.Elapsed()
	return p, nil
}

// trainGeneral trains model on set with the platform's hyperparameters,
// charging the setup meter.
func (p *Platform) trainGeneral(model *nn.Network, set dataset.Set, seed uint64) error {
	examples := dataset.ToExamples(set, p.Config.Classes)
	if len(examples) == 0 {
		return errors.New("core: no labelled training samples")
	}
	trainer := nn.NewTrainer(model, nn.NewSGD(p.Config.LR, p.Config.Momentum, p.Config.WeightDecay))
	trainer.Obs = p.Obs
	stats, err := trainer.Run(examples, nn.TrainConfig{
		Epochs:     p.Config.Epochs,
		BatchSize:  p.Config.BatchSize,
		Mixup:      p.Config.MixupAlpha > 0,
		MixupAlpha: p.Config.MixupAlpha,
		Seed:       seed,
		Workers:    p.Config.Workers,
		Watchdog:   p.Config.Watchdog,
	})
	if p.Config.Watchdog.Enabled {
		// Accumulate even on error: a run that exhausted its rollback budget
		// still counts its checks and rollbacks in the platform's health view.
		p.Health.Accumulate(trainer.WatchdogStats())
	}
	if err != nil {
		return fmt.Errorf("core: general model training: %w", err)
	}
	for _, st := range stats {
		p.SetupMeter.TrainSampleVisits += int64(st.SamplesSeen)
		p.SetupMeter.ParamUpdates += int64(st.BatchUpdates)
	}
	return nil
}

// estimate recomputes P̃ from the current model and I_c (Eq. 3–5).
func (p *Platform) estimate() error {
	sp := p.Obs.StartSpan("platform/estimate")
	defer sp.End()
	joint, err := noise.EstimateJointParallel(p.Ic, p.Model, p.Config.Classes, p.Config.Workers)
	if err != nil {
		return fmt.Errorf("core: probability estimation: %w", err)
	}
	p.SetupMeter.ForwardPasses += int64(len(p.Ic))
	p.Cond = joint.Conditional()
	return nil
}

// Classes returns the task's class count.
func (p *Platform) Classes() int { return p.Config.Classes }
