package core

import (
	"testing"
)

// TestENLDParallelIdentical is the end-to-end differential test of the
// data-parallel hot paths: a full DetectFull run must produce identical
// detections, pseudo labels, inventory selections and analytic-work counts
// at worker counts 1, 2 and 8. Training, scoring, the selection passes and
// the k-NN fan-out all run through the worker pool, so any
// schedule-dependent arithmetic or RNG consumption would surface here.
func TestENLDParallelIdentical(t *testing.T) {
	w := newWorkload(t, 0.25, false, 7)
	run := func(workers int) *FullResult {
		cfg := DefaultConfig(77)
		cfg.Iterations = 3
		cfg.Workers = workers
		e := &ENLD{Platform: w.platform, Config: cfg}
		res, err := e.DetectFull(w.incr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	if len(seq.Noisy)+len(seq.Clean) != len(w.incr) {
		t.Fatal("sequential run did not partition the dataset")
	}
	for _, workers := range []int{2, 8} {
		par := run(workers)
		if !sameIDSet(par.Noisy, seq.Noisy) {
			t.Errorf("workers=%d: noisy set differs (%d vs %d)", workers, len(par.Noisy), len(seq.Noisy))
		}
		if !sameIDSet(par.Clean, seq.Clean) {
			t.Errorf("workers=%d: clean set differs", workers)
		}
		if !sameIDSet(par.SelectedInventory, seq.SelectedInventory) {
			t.Errorf("workers=%d: selected inventory differs", workers)
		}
		if len(par.PseudoLabels) != len(seq.PseudoLabels) {
			t.Errorf("workers=%d: %d pseudo labels, want %d", workers, len(par.PseudoLabels), len(seq.PseudoLabels))
		}
		for id, label := range seq.PseudoLabels {
			if par.PseudoLabels[id] != label {
				t.Errorf("workers=%d: pseudo label for %d is %d, want %d", workers, id, par.PseudoLabels[id], label)
			}
		}
		if par.Meter != seq.Meter {
			t.Errorf("workers=%d: meter %+v, want %+v", workers, par.Meter, seq.Meter)
		}
		if len(par.Snapshots) != len(seq.Snapshots) {
			t.Fatalf("workers=%d: %d snapshots, want %d", workers, len(par.Snapshots), len(seq.Snapshots))
		}
		for i, snap := range seq.Snapshots {
			got := par.Snapshots[i]
			if got.AmbiguousCount != snap.AmbiguousCount || got.ContrastiveSize != snap.ContrastiveSize {
				t.Errorf("workers=%d: snapshot %d is {A=%d C=%d}, want {A=%d C=%d}", workers, i,
					got.AmbiguousCount, got.ContrastiveSize, snap.AmbiguousCount, snap.ContrastiveSize)
			}
			if !sameIDSet(got.Noisy, snap.Noisy) {
				t.Errorf("workers=%d: snapshot %d noisy set differs", workers, i)
			}
		}
	}
}
