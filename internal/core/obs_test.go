package core

import (
	"strings"
	"testing"

	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/noise"
	"enld/internal/obs"
)

// observedWorkload is newWorkload with a registry attached from setup on.
func observedWorkload(t *testing.T, reg *obs.Registry) *testWorkload {
	t.Helper()
	sp := dataset.Spec{
		Name: "core-obs", Classes: 8, FeatureDim: 10, PerClass: 60,
		Separation: 4, Spread: 1, Seed: 11,
	}
	full, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := noise.Pair(sp.Classes, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noise.Apply(full, tm, mat.NewRNG(12)); err != nil {
		t.Fatal(err)
	}
	inv, incr, err := dataset.SplitRatio(full, 2.0/3.0, mat.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPlatformConfig(sp.Classes, sp.FeatureDim, 14)
	cfg.Epochs = 6
	p, err := NewPlatformObserved(inv, cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorkload{platform: p, incr: incr, classes: sp.Classes}
}

// TestDetectPhaseSpans: an observed DetectFull traces every paper phase —
// split, estimate, knn, finetune, vote — plus platform setup, and the trainer
// and pool families carry data.
func TestDetectPhaseSpans(t *testing.T) {
	reg := obs.NewRegistry()
	w := observedWorkload(t, reg)

	e := &ENLD{Platform: w.platform, Config: DefaultConfig(21)}
	e.Config.Iterations = 2
	if _, err := e.DetectFull(w.incr); err != nil {
		t.Fatal(err)
	}

	for _, span := range []string{
		"platform/estimate",
		"detect/split",
		"detect/estimate",
		"detect/knn",
		"detect/finetune",
		"detect/vote",
	} {
		h := reg.Histogram(obs.SpanFamily, "Duration of traced spans, by span name.",
			obs.DefBuckets, obs.Label{Key: "span", Value: span})
		if h.Count() == 0 {
			t.Errorf("span %q recorded no durations", span)
		}
	}

	epochs := reg.Histogram("enld_train_epoch_seconds",
		"Wall-clock duration of one training epoch.", obs.DefBuckets)
	if epochs.Count() == 0 {
		t.Error("trainer recorded no epochs")
	}

	// The recent-span ring holds detect-phase entries.
	sawDetect := false
	for _, rec := range reg.RecentSpans() {
		if strings.HasPrefix(rec.Name, "detect/") {
			sawDetect = true
			break
		}
	}
	if !sawDetect {
		t.Error("recent-span ring has no detect/* entries")
	}
}

// TestObservedDetectMatchesUnobserved: attaching a registry does not change
// detection output — the metric stream only reads and times.
func TestObservedDetectMatchesUnobserved(t *testing.T) {
	plain := observedWorkload(t, nil)
	observed := observedWorkload(t, obs.NewRegistry())

	run := func(w *testWorkload) *FullResult {
		e := &ENLD{Platform: w.platform, Config: DefaultConfig(21)}
		e.Config.Iterations = 2
		res, err := e.DetectFull(w.incr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(plain), run(observed)
	if !sameIDSet(a.Noisy, b.Noisy) {
		t.Fatal("observed detection diverged from unobserved")
	}
}
