package core

import "testing"

// TestENLDANNF1Guardrail is the approximate-k-NN path's end-to-end budget
// (DESIGN.md §4): on seed scenarios detection F1 with the IVF index must
// stay within 0.05 of the exact KD-tree path. The ann package's recall test
// bounds the neighbor-level approximation; this pins that the residual
// neighbor churn does not materially move the detector's output.
func TestENLDANNF1Guardrail(t *testing.T) {
	for _, seed := range []uint64{3, 8} {
		w := newWorkload(t, 0.2, false, seed)

		exactCfg := DefaultConfig(4)
		exact := detectF1(t, w, exactCfg)

		annCfg := DefaultConfig(4)
		annCfg.ANN = true
		approx := detectF1(t, w, annCfg)

		t.Logf("seed %d: exact F1 %.4f, ann F1 %.4f", seed, exact.F1, approx.F1)
		if approx.F1 < exact.F1-0.05 {
			t.Fatalf("seed %d: ann F1 %.4f more than 0.05 below exact %.4f", seed, approx.F1, exact.F1)
		}
	}
}
