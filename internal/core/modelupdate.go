package core

import (
	"errors"
	"fmt"

	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/nn"
)

// ModelUpdate performs Algorithm 4: retrain the general model on the clean
// inventory samples S_c accumulated across detection tasks, swap the roles
// of I_t and I_c (the former training half becomes the new contrastive
// candidate set), and re-estimate the conditional probability on the new
// I_c. The platform is modified in place; on error it is left unchanged.
//
// selected is the union of SelectedInventory sets from previous DetectFull
// calls — IDs into the platform's current I_c.
func (p *Platform) ModelUpdate(selected map[int]bool) error {
	if len(selected) == 0 {
		return errors.New("core: model update with empty selection")
	}
	clean := make(dataset.Set, 0, len(selected))
	for _, smp := range p.Ic {
		if selected[smp.ID] {
			clean = append(clean, smp)
		}
	}
	if len(clean) == 0 {
		return errors.New("core: selected IDs not found in I_c")
	}
	// Train θᵘ from scratch on S_c: the selected samples are (near-)clean,
	// so a fresh model avoids inheriting noise memorized by θ.
	rng := mat.NewRNG(p.Config.Seed ^ 0xa5a5a5a5)
	updated, err := nn.Build(p.Config.Arch, p.Config.InputDim, p.Config.Classes, rng)
	if err != nil {
		return err
	}
	prevModel, prevCond := p.Model, p.Cond
	prevIt, prevIc := p.It, p.Ic
	if err := p.trainGeneral(updated, clean, rng.Uint64()); err != nil {
		return fmt.Errorf("core: model update training: %w", err)
	}
	p.Model = updated
	p.It, p.Ic = p.Ic, p.It // swap(I_t, I_c)
	if err := p.estimate(); err != nil {
		p.Model, p.Cond = prevModel, prevCond
		p.It, p.Ic = prevIt, prevIc
		return err
	}
	return nil
}

// ValidationAccuracy reports the model's accuracy against the observed
// labels of set — the metric Table II uses to compare θ and θᵘ on held-out
// data. (On mostly clean held-out data observed-label accuracy tracks
// true-label accuracy.)
func (p *Platform) ValidationAccuracy(set dataset.Set) float64 {
	if len(set) == 0 {
		return 0
	}
	labels := make([]int, 0, len(set))
	xs := make([][]float64, 0, len(set))
	for _, smp := range set {
		if smp.Observed == dataset.Missing {
			continue
		}
		labels = append(labels, smp.Observed)
		xs = append(xs, smp.X)
	}
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, pred := range p.Model.PredictBatch(xs, p.Config.Workers) {
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// TrueAccuracy reports accuracy against ground-truth labels — an
// evaluation-only metric used by the Table II experiment, where the paper
// measures generalization of θ versus θᵘ.
func (p *Platform) TrueAccuracy(set dataset.Set) float64 {
	if len(set) == 0 {
		return 0
	}
	xs := make([][]float64, len(set))
	for i, smp := range set {
		xs[i] = smp.X
	}
	correct := 0
	for i, pred := range p.Model.PredictBatch(xs, p.Config.Workers) {
		if pred == set[i].True {
			correct++
		}
	}
	return float64(correct) / float64(len(set))
}
