package core

import (
	"errors"
	"fmt"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/nn"
	"enld/internal/obs"
	"enld/internal/sampling"
)

// Config controls fine-grained noisy label detection (Algorithm 3).
type Config struct {
	// K is the contrastive-samples-size hyperparameter (k in Algorithm 2):
	// each sampling pass selects k contrastive samples per ambiguous sample.
	K int
	// Iterations is the training-iteration count t; Steps is the number of
	// training/selection steps s within each iteration. The paper uses
	// s = 5 with t = 5 (EMNIST) or t = 17 (CIFAR-100, Tiny-ImageNet).
	Iterations int
	Steps      int
	// WarmupEpochs trains the cloned model on the initial contrastive set
	// before the iterations start, keeping the snapshot with the best
	// validation accuracy on D (the warming-up process). The paper uses 2.
	WarmupEpochs int

	// Fine-tuning hyperparameters.
	FinetuneLR float64
	Momentum   float64
	BatchSize  int

	// Strategy selects contrastive samples; nil means the paper's
	// contrastive sampling. Substituting a different strategy reproduces
	// the §V-D comparison (Random/HC/LC/Entropy/Pseudo) and the ENLD-1 and
	// ENLD-4 ablations.
	Strategy sampling.Strategy

	// DisableMajorityVoting (ENLD-2) adds a sample to the clean set as soon
	// as a single step's prediction matches the observed label, instead of
	// requiring a strict majority of the iteration's steps.
	DisableMajorityVoting bool
	// DisableCleanMerge (ENLD-3) skips merging the selected clean samples
	// into the contrastive set (drops line 21's C = C ∪ S).
	DisableCleanMerge bool

	// AutoStop ends the iteration loop early once the clean set has not
	// changed for two consecutive iterations. §V-C observes that high noise
	// rates converge (and flatten) quickly, recommending a smaller t there;
	// auto-stop implements that recommendation without hand-tuning t per
	// noise regime. Iterations remains the upper bound.
	AutoStop bool

	// Workers bounds the data-parallel workers used for training, scoring
	// and the k-NN fan-out (0 = all cores). Detection results are identical
	// at every worker count; see nn.TrainConfig.Workers for the contract.
	Workers int

	// ANN replaces contrastive sampling's exact per-class KD-trees with the
	// approximate IVF index of internal/ann. Detection results stay close to
	// the exact path but are not identical: the ann package pins
	// recall@k ≥ 0.95, and a core-level guardrail test bounds the detection-F1
	// gap on seed scenarios. Ignored when Strategy is set explicitly.
	ANN bool

	// Float32 switches the ranking-only forward passes — the re-scoring that
	// feeds the ambiguous/high-quality split and sampling, and the per-step
	// vote predictions — to a float32 snapshot of the fine-tuned model (see
	// DESIGN.md §4). Training, warmup validation and every gradient
	// computation stay float64. This is a versioned numeric profile: results
	// are deterministic at every worker count, but not bit-identical to the
	// float64 default; the differential tests bound the drift and pin equal
	// noisy sets on the seed scenarios.
	Float32 bool

	Seed uint64
}

// DefaultConfig returns the paper's hyperparameters: k = 3, s = 5, warming
// up for 2 epochs. Iterations defaults to 5; harder tasks use 17 (§V-A6).
func DefaultConfig(seed uint64) Config {
	return Config{
		K:            3,
		Iterations:   5,
		Steps:        5,
		WarmupEpochs: 2,
		FinetuneLR:   0.01,
		Momentum:     0.9,
		BatchSize:    32,
		Seed:         seed,
	}
}

// TierLadder returns the ENLD side of the brownout degradation ladder built
// from c: the config as given (full quality), then with the approximate ANN
// index, then ANN plus the float32 ranking profile. Each step trades
// detection quality headroom for speed; serving layers append a cheap
// non-ENLD fallback detector as the last rung. The base config's own
// ANN/Float32 settings are overridden so the rungs are strictly ordered.
func (c Config) TierLadder() []Config {
	full := c
	full.ANN, full.Float32 = false, false
	ann := full
	ann.ANN = true
	annF32 := ann
	annF32.Float32 = true
	return []Config{full, ann, annF32}
}

// IterationSnapshot records the detector's state after one iteration of
// fine-grained NLD; the Fig. 9 (metric trajectories) and Fig. 13(b)
// (ambiguous-sample counts) experiments consume these.
type IterationSnapshot struct {
	// Noisy is the noisy set N as of this iteration's end.
	Noisy map[int]bool
	// AmbiguousCount is |A| after re-scoring with the fine-tuned model.
	AmbiguousCount int
	// ContrastiveSize is |C| used for the next iteration's training.
	ContrastiveSize int
}

// FullResult extends the common detection result with ENLD-specific outputs.
type FullResult struct {
	*detect.Result
	// Snapshots holds one entry per completed iteration.
	Snapshots []IterationSnapshot
	// SelectedInventory is S_c: the IDs of inventory (I_c) samples judged
	// clean in every iteration — input to Algorithm 4's model update.
	SelectedInventory map[int]bool
	// PseudoLabels maps the ID of each missing-label sample to the label
	// chosen by majority vote over all steps' predictions (§V-H).
	PseudoLabels map[int]int
}

// ENLD is the paper's detector. It is stateless across Detect calls except
// for the shared Platform; each call clones the general model.
type ENLD struct {
	Platform *Platform
	Config   Config
}

// Name implements detect.Detector.
func (e *ENLD) Name() string { return "enld" }

// Detect implements detect.Detector.
func (e *ENLD) Detect(d dataset.Set) (*detect.Result, error) {
	full, err := e.DetectFull(d)
	if err != nil {
		return nil, err
	}
	return full.Result, nil
}

// DetectFull runs fine-grained noisy label detection with contrastive
// sampling (Algorithms 2 and 3) and returns the extended result.
func (e *ENLD) DetectFull(d dataset.Set) (*FullResult, error) {
	if e.Platform == nil {
		return nil, errors.New("core: ENLD needs a platform")
	}
	if len(d) == 0 {
		return nil, errors.New("core: empty incremental dataset")
	}
	cfg := e.Config
	if cfg.K <= 0 || cfg.Iterations <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("core: invalid config k=%d t=%d s=%d", cfg.K, cfg.Iterations, cfg.Steps)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = sampling.Contrastive{ANN: cfg.ANN}
	}

	sw := cost.StartStopwatch()
	res := &FullResult{
		Result:            detect.NewResult(),
		SelectedInventory: make(map[int]bool),
		PseudoLabels:      make(map[int]int),
	}
	rng := mat.NewRNG(cfg.Seed)
	classes := e.Platform.Classes()

	// I' = inventory candidates restricted to label(D) (Algorithm 3 line 3).
	iPrime := detect.RestrictToLabels(e.Platform.Ic, d.Labels())

	model := e.Platform.Model.Clone() // θ'
	trainer := nn.NewTrainer(model, nn.NewSGD(cfg.FinetuneLR, cfg.Momentum, 0))
	trainer.Obs = e.Platform.Obs

	// Initial ambiguous set and contrastive samples under θ (Algorithm 1
	// lines 5–7).
	run := &nldRun{
		e: e, cfg: cfg, strategy: strategy, rng: rng,
		d: d, iPrime: iPrime, classes: classes,
		model: model, trainer: trainer, res: res,
		obs: e.Platform.Obs,
	}
	if err := run.resample(); err != nil {
		return nil, err
	}
	if err := run.warmup(); err != nil {
		return nil, err
	}

	pseudoVotes := make(map[int][]int) // d-index → per-class vote counts
	cleanIDs := make(map[int]bool)
	countC := make([]int, len(iPrime))

	voteThreshold := cfg.Steps/2 + 1
	stableIters := 0
	dInputs := make([][]float64, len(d))
	for i, smp := range d {
		dInputs[i] = smp.X
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		count := make([]int, len(d))
		for step := 0; step < cfg.Steps; step++ {
			if err := run.trainEpoch(); err != nil {
				return nil, err
			}
			// Selection pass: compare predictions with observed labels.
			voteSpan := run.obs.StartSpan("detect/vote")
			preds := run.predict(dInputs)
			res.Meter.ForwardPasses += int64(len(d))
			for i, smp := range d {
				pred := preds[i]
				if smp.Observed == dataset.Missing {
					votes := pseudoVotes[i]
					if votes == nil {
						votes = make([]int, classes)
						pseudoVotes[i] = votes
					}
					votes[pred]++
					continue
				}
				if pred == smp.Observed {
					count[i]++
					if cfg.DisableMajorityVoting {
						cleanIDs[smp.ID] = true
					}
				}
			}
			voteSpan.End()
		}
		if !cfg.DisableMajorityVoting {
			for i, c := range count {
				if c >= voteThreshold {
					cleanIDs[d[i].ID] = true
				}
			}
		}

		// Sample update: re-score D and I' under the fine-tuned model, track
		// inventory samples that stay high-quality, then re-sample C.
		if err := run.resample(); err != nil {
			return nil, err
		}
		for _, idx := range run.hqIdx {
			countC[idx]++
		}
		if !cfg.DisableCleanMerge {
			run.mergeClean(cleanIDs)
		}

		res.Snapshots = append(res.Snapshots, IterationSnapshot{
			Noisy:           noisyOf(d, cleanIDs),
			AmbiguousCount:  len(run.ambIdx),
			ContrastiveSize: len(run.contrastive),
		})

		if cfg.AutoStop {
			n := len(res.Snapshots)
			if n >= 2 && sameIDSet(res.Snapshots[n-1].Noisy, res.Snapshots[n-2].Noisy) {
				stableIters++
			} else {
				stableIters = 0
			}
			if stableIters >= 2 {
				break
			}
		}
	}

	// Final partition of D.
	for _, smp := range d {
		if cleanIDs[smp.ID] {
			res.MarkClean(smp.ID)
		} else {
			res.MarkNoisy(smp.ID)
		}
	}
	// Pseudo labels for missing-label samples by majority vote (§V-H).
	for i, votes := range pseudoVotes {
		res.PseudoLabels[d[i].ID] = mat.ArgMax(intsToFloats(votes))
	}
	// Data selection of inventory: stringent criterion — judged high-quality
	// in every iteration (count == t).
	for i, c := range countC {
		if c == cfg.Iterations {
			res.SelectedInventory[iPrime[i].ID] = true
		}
	}
	res.Process = sw.Elapsed()
	return res, nil
}

// nldRun carries the per-request mutable state of fine-grained NLD so the
// phases above stay readable.
type nldRun struct {
	e        *ENLD
	cfg      Config
	strategy sampling.Strategy
	rng      *mat.RNG

	d       dataset.Set
	iPrime  dataset.Set
	classes int

	model   *nn.Network
	trainer *nn.Trainer
	res     *FullResult
	obs     *obs.Registry

	// f32 is the float32 forward snapshot, refreshed from model before each
	// ranking-only scoring pass when cfg.Float32 is set.
	f32 nn.Network32

	// Refreshed by resample:
	ambIdx      []int       // indices of D in the ambiguous set A
	hqIdx       []int       // indices of I' in the filtered high-quality set H'
	contrastive dataset.Set // current contrastive set C

	// Cached validation split over D's labelled samples. D never changes
	// within a run, so the feature/label views are materialized once and
	// reused by every warm-up epoch and fine-tune iteration instead of
	// being rebuilt per accuracy probe.
	valXS     [][]float64
	valLabels []int
	valReady  bool
}

// resample re-scores D and I' under the current model, rebuilds A and H'
// (Definition 1 plus the mean-confidence filter of §IV-E), and runs the
// sampling strategy to produce a fresh contrastive set C.
func (r *nldRun) resample() error {
	splitSpan := r.obs.StartSpan("detect/split")
	var dScores, iScores *detect.Scores
	if r.cfg.Float32 {
		r.model.Snapshot32(&r.f32)
		dScores = detect.ScoreParallel32(&r.f32, r.d, &r.res.Meter, r.cfg.Workers)
		iScores = detect.ScoreParallel32(&r.f32, r.iPrime, &r.res.Meter, r.cfg.Workers)
	} else {
		dScores = detect.ScoreParallel(r.model, r.d, &r.res.Meter, r.cfg.Workers)
		iScores = detect.ScoreParallel(r.model, r.iPrime, &r.res.Meter, r.cfg.Workers)
	}

	r.ambIdx = detect.Ambiguous(r.d, dScores.Predicted)
	r.hqIdx = highQualityFiltered(r.iPrime, iScores)
	splitSpan.End()

	// Assemble the sampler's view. Missing-label ambiguous samples have no
	// observed label for the probability draw; substitute the model's
	// current prediction, which is the best available estimate.
	amb := make(dataset.Set, 0, len(r.ambIdx))
	ambFeats := make([][]float64, 0, len(r.ambIdx))
	for _, i := range r.ambIdx {
		smp := r.d[i]
		if smp.Observed == dataset.Missing {
			smp.Observed = dScores.Predicted[i]
		}
		amb = append(amb, smp)
		ambFeats = append(ambFeats, dScores.Features[i])
	}
	pool := make(dataset.Set, 0, len(r.hqIdx))
	poolFeats := make([][]float64, 0, len(r.hqIdx))
	poolConf := make([]float64, 0, len(r.hqIdx))
	poolEnt := make([]float64, 0, len(r.hqIdx))
	poolPred := make([]int, 0, len(r.hqIdx))
	for _, i := range r.hqIdx {
		pool = append(pool, r.iPrime[i])
		poolFeats = append(poolFeats, iScores.Features[i])
		poolConf = append(poolConf, iScores.MaxConf[i])
		poolEnt = append(poolEnt, iScores.Entropy[i])
		poolPred = append(poolPred, iScores.Predicted[i])
	}
	req := &sampling.Request{
		Ambiguous:         amb,
		AmbiguousFeatures: ambFeats,
		Pool:              pool,
		PoolFeatures:      poolFeats,
		PoolConfidences:   poolConf,
		PoolEntropies:     poolEnt,
		PoolPredicted:     poolPred,
		// Baseline policies of §V-A5 select from the uncurated candidates
		// (no high-quality filter), as the paper specifies "in I_c".
		RawPool:            r.iPrime,
		RawPoolConfidences: iScores.MaxConf,
		RawPoolEntropies:   iScores.Entropy,
		RawPoolPredicted:   iScores.Predicted,
		Cond:               r.e.Platform.Cond,
		K:                  r.cfg.K,
		RNG:                r.rng,
		Meter:              &r.res.Meter,
		Obs:                r.obs,
		Workers:            r.cfg.Workers,
	}
	if len(amb) == 0 || len(pool) == 0 {
		r.contrastive = nil
		return nil
	}
	c, err := r.strategy.Select(req)
	if err != nil {
		return fmt.Errorf("core: contrastive sampling: %w", err)
	}
	r.contrastive = c
	return nil
}

// predict returns argmax predictions for xs under the current model — the
// per-step vote pass. With cfg.Float32 it refreshes and uses the float32
// ranking snapshot; warmup's validation accuracy intentionally stays
// float64 (it selects a parameter snapshot rather than ranking samples).
func (r *nldRun) predict(xs [][]float64) []int {
	if r.cfg.Float32 {
		r.model.Snapshot32(&r.f32)
		return r.f32.PredictBatch32(xs, r.cfg.Workers)
	}
	return r.model.PredictBatch(xs, r.cfg.Workers)
}

// mergeClean appends D's currently selected clean samples to C
// (Algorithm 3 line 21), stabilizing the fine-tuning set.
func (r *nldRun) mergeClean(cleanIDs map[int]bool) {
	for _, smp := range r.d {
		if cleanIDs[smp.ID] {
			r.contrastive = append(r.contrastive, smp)
		}
	}
}

// trainEpoch runs one training pass over the contrastive set. An empty C
// (no ambiguous samples remain) is a no-op: the model is already consistent
// with D's labels wherever it matters.
func (r *nldRun) trainEpoch() error {
	if len(r.contrastive) == 0 {
		return nil
	}
	examples := dataset.ToExamples(r.contrastive, r.classes)
	if len(examples) == 0 {
		return nil
	}
	ftSpan := r.obs.StartSpan("detect/finetune")
	stats, err := r.trainer.Run(examples, nn.TrainConfig{
		Epochs:    1,
		BatchSize: r.cfg.BatchSize,
		Seed:      r.rng.Uint64(),
		Workers:   r.cfg.Workers,
	})
	ftSpan.End()
	if err != nil {
		return fmt.Errorf("core: fine-tune epoch: %w", err)
	}
	for _, st := range stats {
		r.res.Meter.TrainSampleVisits += int64(st.SamplesSeen)
		r.res.Meter.ParamUpdates += int64(st.BatchUpdates)
	}
	return nil
}

// warmup trains on the initial contrastive set for WarmupEpochs, keeping the
// parameter snapshot with the best observed-label validation accuracy on D.
func (r *nldRun) warmup() error {
	if r.cfg.WarmupEpochs <= 0 || len(r.contrastive) == 0 {
		return nil
	}
	best := r.model.Clone()
	bestAcc := r.validationAccuracy()
	for epoch := 0; epoch < r.cfg.WarmupEpochs; epoch++ {
		if err := r.trainEpoch(); err != nil {
			return err
		}
		if acc := r.validationAccuracy(); acc > bestAcc {
			bestAcc = acc
			if err := best.CopyFrom(r.model); err != nil {
				return err
			}
		}
	}
	return r.model.CopyFrom(best)
}

// validationAccuracy is the fraction of D's labelled samples whose predicted
// label matches the observed label under the current model.
func (r *nldRun) validationAccuracy() float64 {
	if !r.valReady {
		r.valXS = make([][]float64, 0, len(r.d))
		r.valLabels = make([]int, 0, len(r.d))
		for _, smp := range r.d {
			if smp.Observed == dataset.Missing {
				continue
			}
			r.valXS = append(r.valXS, smp.X)
			r.valLabels = append(r.valLabels, smp.Observed)
		}
		r.valReady = true
	}
	if len(r.valXS) == 0 {
		return 0
	}
	preds := r.model.PredictBatch(r.valXS, r.cfg.Workers)
	r.res.Meter.ForwardPasses += int64(len(r.valXS))
	agree := 0
	for i, p := range preds {
		if p == r.valLabels[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(r.valXS))
}

// highQualityFiltered returns the indices of set forming H': samples whose
// prediction matches their observed label, further filtered to those with
// confidence at or above the mean of their predicted class (§IV-E's
// "average predicted probability" criterion for cleaner contrastive
// samples).
func highQualityFiltered(set dataset.Set, scores *detect.Scores) []int {
	agree := detect.Agreeing(set, scores.Predicted)
	sum := make(map[int]float64)
	n := make(map[int]int)
	for _, i := range agree {
		c := scores.Predicted[i]
		sum[c] += scores.MaxConf[i]
		n[c]++
	}
	out := make([]int, 0, len(agree))
	for _, i := range agree {
		c := scores.Predicted[i]
		if scores.MaxConf[i] >= sum[c]/float64(n[c]) {
			out = append(out, i)
		}
	}
	return out
}

// noisyOf materializes the complement of cleanIDs over d as an ID set.
func noisyOf(d dataset.Set, cleanIDs map[int]bool) map[int]bool {
	out := make(map[int]bool)
	for _, smp := range d {
		if !cleanIDs[smp.ID] {
			out[smp.ID] = true
		}
	}
	return out
}

// sameIDSet reports whether two ID sets are equal.
func sameIDSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func intsToFloats(x []int) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(v)
	}
	return out
}
