package core

import "testing"

// TestENLDFloat32MatchesFloat64 is the float32 ranking path's end-to-end
// guardrail (DESIGN.md §4): on seed scenarios the versioned float32 numeric
// profile must make exactly the decisions of the float64 reference — the
// detected noisy set is identical, not merely close. The ≤1e-4 relative
// drift bounded by the nn-level differential tests sits below every decision
// margin in these scenarios, so any divergence here is a wiring bug, not
// numeric noise.
func TestENLDFloat32MatchesFloat64(t *testing.T) {
	for _, seed := range []uint64{3, 8} {
		w := newWorkload(t, 0.2, false, seed)

		run := func(f32 bool) map[int]bool {
			cfg := DefaultConfig(4)
			cfg.Float32 = f32
			e := &ENLD{Platform: w.platform, Config: cfg}
			res, err := e.DetectFull(w.incr)
			if err != nil {
				t.Fatalf("seed %d float32=%v: %v", seed, f32, err)
			}
			return res.Noisy
		}

		want := run(false)
		got := run(true)
		if len(got) != len(want) {
			t.Fatalf("seed %d: float32 flagged %d noisy, float64 flagged %d", seed, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("seed %d: sample %d noisy under float64 but not float32", seed, id)
			}
		}
	}
}
