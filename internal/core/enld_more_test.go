package core

import (
	"testing"

	"enld/internal/dataset"
	"enld/internal/metrics"
	"enld/internal/sampling"
)

func TestENLDSnapshotCountsMatchConfig(t *testing.T) {
	w := newWorkload(t, 0.2, false, 40)
	for _, iters := range []int{1, 3} {
		cfg := DefaultConfig(41)
		cfg.Iterations = iters
		res, err := (&ENLD{Platform: w.platform, Config: cfg}).DetectFull(w.incr)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Snapshots) != iters {
			t.Fatalf("iters=%d: %d snapshots", iters, len(res.Snapshots))
		}
	}
}

func TestENLDWarmupDisabled(t *testing.T) {
	// WarmupEpochs = 0 must still work (Algorithm 3 without line 4).
	w := newWorkload(t, 0.2, false, 42)
	cfg := DefaultConfig(43)
	cfg.WarmupEpochs = 0
	res, err := (&ENLD{Platform: w.platform, Config: cfg}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Noisy)+len(res.Clean) != len(w.incr) {
		t.Fatal("partition incomplete without warmup")
	}
}

func TestENLDCleanMergeGrowsContrastiveSet(t *testing.T) {
	// With the merge enabled, |C| in later iterations includes the selected
	// clean set; disabling it (ENLD-3) must shrink the recorded sizes.
	w := newWorkload(t, 0.2, false, 44)
	base := DefaultConfig(45)
	with, err := (&ENLD{Platform: w.platform, Config: base}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	noMerge := base
	noMerge.DisableCleanMerge = true
	without, err := (&ENLD{Platform: w.platform, Config: noMerge}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	last := len(with.Snapshots) - 1
	if with.Snapshots[last].ContrastiveSize <= without.Snapshots[last].ContrastiveSize {
		t.Fatalf("merge did not grow C: with=%d without=%d",
			with.Snapshots[last].ContrastiveSize, without.Snapshots[last].ContrastiveSize)
	}
}

func TestENLDDisableMajorityVotingMoreAggressive(t *testing.T) {
	// ENLD-2 marks clean on any single agreement, so its clean set can only
	// be a superset of the majority-voted one under identical seeds.
	w := newWorkload(t, 0.3, false, 46)
	base := DefaultConfig(47)
	strict, err := (&ENLD{Platform: w.platform, Config: base}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	loose := base
	loose.DisableMajorityVoting = true
	aggressive, err := (&ENLD{Platform: w.platform, Config: loose}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggressive.Clean) < len(strict.Clean) {
		t.Fatalf("ENLD-2 selected fewer clean (%d) than majority voting (%d)",
			len(aggressive.Clean), len(strict.Clean))
	}
}

func TestENLDAllStrategiesProduceFullPartition(t *testing.T) {
	w := newWorkload(t, 0.2, false, 48)
	for _, strat := range sampling.All() {
		cfg := DefaultConfig(49)
		cfg.Iterations = 2
		cfg.Strategy = strat
		res, err := (&ENLD{Platform: w.platform, Config: cfg}).DetectFull(w.incr)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		for _, smp := range w.incr {
			if res.Noisy[smp.ID] == res.Clean[smp.ID] {
				t.Fatalf("%s: sample %d not partitioned", strat.Name(), smp.ID)
			}
		}
	}
}

func TestENLDHandlesAllMissingLabels(t *testing.T) {
	// Degenerate arrival: every label missing. Detection must not fail; all
	// samples get pseudo labels and are flagged noisy.
	w := newWorkload(t, 0.1, false, 50)
	set := w.incr.Clone()
	for i := range set {
		set[i].Observed = dataset.Missing
	}
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(51)}).DetectFull(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PseudoLabels) != len(set) {
		t.Fatalf("%d pseudo labels for %d samples", len(res.PseudoLabels), len(set))
	}
	for _, smp := range set {
		if !res.Noisy[smp.ID] {
			t.Fatal("unlabeled sample not flagged")
		}
	}
}

func TestENLDHandlesCleanDataset(t *testing.T) {
	// A perfectly clean arrival: nearly everything should be kept.
	w := newWorkload(t, 0.0, false, 52)
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(53)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(len(res.Noisy)) / float64(len(w.incr)); frac > 0.15 {
		t.Fatalf("flagged %v of a clean dataset", frac)
	}
}

func TestENLDSingleSampleDataset(t *testing.T) {
	w := newWorkload(t, 0.2, false, 54)
	single := w.incr[:1].Clone()
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(55)}).DetectFull(single)
	if err != nil {
		t.Fatal(err)
	}
	if res.Noisy[single[0].ID] == res.Clean[single[0].ID] {
		t.Fatal("single sample not partitioned")
	}
}

func TestENLDAutoStop(t *testing.T) {
	w := newWorkload(t, 0.1, false, 90)
	cfg := DefaultConfig(91)
	cfg.Iterations = 12
	cfg.AutoStop = true
	res, err := (&ENLD{Platform: w.platform, Config: cfg}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	// On an easy low-noise task the clean set stabilizes well before 12
	// iterations; auto-stop must cut the loop short.
	if len(res.Snapshots) >= 12 {
		t.Fatalf("auto-stop did not trigger: %d iterations", len(res.Snapshots))
	}
	// Quality must match the full run within tolerance.
	full := cfg
	full.AutoStop = false
	ref, err := (&ENLD{Platform: w.platform, Config: full}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	got := metrics.EvaluateDetection(w.incr, res.Noisy).F1
	want := metrics.EvaluateDetection(w.incr, ref.Noisy).F1
	if got < want-0.05 {
		t.Fatalf("auto-stop F1 %v well below full F1 %v", got, want)
	}
}
