package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"enld/internal/dataset"
	"enld/internal/fsio"
	"enld/internal/nn"
	"enld/internal/noise"
)

// platformSnapshot is the gob wire format of a Platform. The model is
// embedded as its own gob stream (nn.Network has private fields and its own
// Save/Load), so the snapshot carries it as raw bytes.
type platformSnapshot struct {
	ModelBytes []byte
	Cond       noise.Conditional
	It         dataset.Set
	Ic         dataset.Set
	Config     PlatformConfig
	SetupTime  time.Duration
	Health     nn.WatchdogStats
}

// Save persists the platform — general model, probability estimate,
// inventory halves and configuration — so a restarted service can resume
// serving detection requests without repeating the setup phase.
func (p *Platform) Save(w io.Writer) error {
	var model bytesBuffer
	if err := p.Model.Save(&model); err != nil {
		return fmt.Errorf("core: save platform model: %w", err)
	}
	snap := platformSnapshot{
		ModelBytes: model.data,
		Cond:       p.Cond,
		It:         p.It,
		Ic:         p.Ic,
		Config:     p.Config,
		SetupTime:  p.SetupTime,
		Health:     p.Health,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: save platform: %w", err)
	}
	return nil
}

// LoadPlatform reads a platform previously written with Save.
func LoadPlatform(r io.Reader) (*Platform, error) {
	var snap platformSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load platform: %w", err)
	}
	if len(snap.ModelBytes) == 0 {
		return nil, errors.New("core: load platform: missing model")
	}
	model, err := nn.Load(&bytesBuffer{data: snap.ModelBytes})
	if err != nil {
		return nil, fmt.Errorf("core: load platform model: %w", err)
	}
	if model.Classes() != snap.Config.Classes || model.InputDim() != snap.Config.InputDim {
		return nil, errors.New("core: load platform: model/config mismatch")
	}
	if len(snap.It) == 0 || len(snap.Ic) == 0 {
		return nil, errors.New("core: load platform: empty inventory halves")
	}
	if err := model.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: load platform: %w", err)
	}
	if snap.Health == (nn.WatchdogStats{}) {
		// Snapshots written before health accounting (or with the watchdog
		// off) carry a zero struct; normalize the "never unhealthy" sentinel.
		snap.Health.LastUnhealthyEpoch = -1
	}
	return &Platform{
		Model:     model,
		Cond:      snap.Cond,
		It:        snap.It,
		Ic:        snap.Ic,
		Config:    snap.Config,
		SetupTime: snap.SetupTime,
		Health:    snap.Health,
	}, nil
}

// SavePlatformFile atomically persists p to path via the shared
// tmp+fsync+rename helper, so a crash mid-save leaves the previous snapshot
// intact rather than a torn file.
func SavePlatformFile(p *Platform, path string) error {
	return fsio.WriteFileAtomic(path, func(w io.Writer) error {
		if err := p.Save(w); err != nil {
			return fmt.Errorf("core: save platform %s: %w", path, err)
		}
		return nil
	})
}

// LoadPlatformFile reads a platform snapshot written with SavePlatformFile.
// Torn, corrupted or foreign files are rejected with descriptive errors (the
// embedded model snapshot carries its own version header and CRC), so a
// caller can safely fall back to a fresh setup when the load fails.
func LoadPlatformFile(path string) (*Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load platform %s: %w", path, err)
	}
	defer f.Close()
	p, err := LoadPlatform(f)
	if err != nil {
		return nil, fmt.Errorf("core: load platform %s: %w", path, err)
	}
	return p, nil
}

// PlatformStore is the slice of a durable inventory the platform snapshot
// needs: store and retrieve one opaque snapshot blob. lake.Inventory
// satisfies it structurally; core deliberately avoids importing the lake
// package so the dependency keeps pointing lake → core-free.
type PlatformStore interface {
	SavePlatform(snapshot []byte) error
	LoadPlatform() ([]byte, error)
}

// SavePlatformInventory persists p's snapshot into a durable inventory. The
// backend decides durability mechanics (atomic blob rewrite for gob, an
// appended CRC-framed record for the segment log); a nil error means the
// snapshot is durable.
func SavePlatformInventory(p *Platform, inv PlatformStore) error {
	var buf bytesBuffer
	if err := p.Save(&buf); err != nil {
		return err
	}
	if err := inv.SavePlatform(buf.data); err != nil {
		return fmt.Errorf("core: save platform to inventory: %w", err)
	}
	return nil
}

// LoadPlatformInventory restores the platform from a durable inventory.
// Backend errors (including lake.ErrNoSnapshot for a fresh store) are
// wrapped with %w, so callers can still errors.Is against the sentinel.
func LoadPlatformInventory(inv PlatformStore) (*Platform, error) {
	data, err := inv.LoadPlatform()
	if err != nil {
		return nil, fmt.Errorf("core: load platform from inventory: %w", err)
	}
	p, err := LoadPlatform(&bytesBuffer{data: data})
	if err != nil {
		return nil, fmt.Errorf("core: load platform from inventory: %w", err)
	}
	return p, nil
}

// bytesBuffer is a minimal in-memory io.ReadWriter; bytes.Buffer would work
// but this keeps the read position explicit for the nested gob stream.
type bytesBuffer struct {
	data []byte
	off  int
}

func (b *bytesBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *bytesBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}
