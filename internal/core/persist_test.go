package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"enld/internal/fault"
	"enld/internal/nn"
)

func TestSavePlatformFileLoadPlatformFileRoundTrip(t *testing.T) {
	w := newWorkload(t, 0.2, false, 90)
	path := filepath.Join(t.TempDir(), "platform.gob")
	if err := SavePlatformFile(w.platform, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlatformFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config != w.platform.Config {
		t.Fatal("config not preserved")
	}
	if loaded.Health.LastUnhealthyEpoch != -1 {
		t.Fatalf("health sentinel = %d, want -1", loaded.Health.LastUnhealthyEpoch)
	}
	// No temporary files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1", len(entries))
	}
}

func TestLoadPlatformFileRejectsTornSnapshot(t *testing.T) {
	w := newWorkload(t, 0.2, false, 91)
	path := filepath.Join(t.TempDir(), "platform.gob")
	if err := SavePlatformFile(w.platform, path); err != nil {
		t.Fatal(err)
	}
	if err := fault.TearFile(path, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlatformFile(path); err == nil {
		t.Fatal("torn platform snapshot loaded successfully")
	}
}

func TestLoadPlatformFileRejectsCorruptedModel(t *testing.T) {
	w := newWorkload(t, 0.2, false, 92)
	path := filepath.Join(t.TempDir(), "platform.gob")
	if err := SavePlatformFile(w.platform, path); err != nil {
		t.Fatal(err)
	}
	// The snapshot bytes are deterministic for a fixed seed, so this flip
	// always lands on the same byte; the layered defenses (outer gob
	// framing, the model's CRC, structural validation) must reject it.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.CorruptFileByte(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlatformFile(path); err == nil {
		t.Fatal("corrupted platform snapshot loaded successfully")
	}
}

func TestLoadPlatformRejectsNonFiniteModel(t *testing.T) {
	w := newWorkload(t, 0.2, false, 93)
	fault.PokeNaN(w.platform.Model, 5)
	path := filepath.Join(t.TempDir(), "platform.gob")
	if err := SavePlatformFile(w.platform, path); err != nil {
		t.Fatal(err)
	}
	_, err := LoadPlatformFile(path)
	if err == nil {
		t.Fatal("platform with NaN model weights loaded successfully")
	}
	if !strings.Contains(err.Error(), "unhealthy") {
		t.Fatalf("error %q does not name the health failure", err)
	}
}

func TestPlatformHealthAccumulatesAcrossTraining(t *testing.T) {
	w := newWorkload(t, 0.2, false, 94)
	if w.platform.Health.LastUnhealthyEpoch != -1 {
		t.Fatalf("watchdog-off platform health = %+v", w.platform.Health)
	}

	cfg := DefaultPlatformConfig(8, 10, 97)
	cfg.Epochs = 6
	cfg.Watchdog = nn.WatchdogConfig{Enabled: true}
	inv := append(w.platform.It, w.platform.Ic...)
	p, err := NewPlatform(inv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Health
	if h.CheckpointsTaken == 0 || h.HealthChecks == 0 {
		t.Fatalf("setup training recorded no watchdog activity: %+v", h)
	}
	// Algorithm-4 retraining accumulates on top of setup.
	res, err := (&ENLD{Platform: p, Config: DefaultConfig(98)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ModelUpdate(res.SelectedInventory); err != nil {
		t.Fatal(err)
	}
	if p.Health.CheckpointsTaken <= h.CheckpointsTaken {
		t.Fatalf("model update did not accumulate health stats: %+v vs %+v", p.Health, h)
	}
}
