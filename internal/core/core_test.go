package core

import (
	"bytes"
	"testing"

	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/metrics"
	"enld/internal/noise"
	"enld/internal/sampling"
)

// testWorkload bundles a platform over a noisy synthetic task and a noisy
// incremental dataset.
type testWorkload struct {
	platform *Platform
	incr     dataset.Set
	classes  int
}

func newWorkload(t *testing.T, eta float64, grouped bool, seed uint64) *testWorkload {
	t.Helper()
	sp := dataset.Spec{
		Name: "core", Classes: 8, FeatureDim: 10, PerClass: 60,
		Separation: 4, Spread: 1, Seed: seed,
	}
	if grouped {
		sp.GroupSize = 4
		sp.WithinGroup = 0.3
	}
	full, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if eta > 0 {
		tm, err := noise.Pair(sp.Classes, eta)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := noise.Apply(full, tm, mat.NewRNG(seed+1)); err != nil {
			t.Fatal(err)
		}
	}
	inv, incr, err := dataset.SplitRatio(full, 2.0/3.0, mat.NewRNG(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPlatformConfig(sp.Classes, sp.FeatureDim, seed+3)
	cfg.Epochs = 12
	p, err := NewPlatform(inv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorkload{platform: p, incr: incr, classes: sp.Classes}
}

func TestNewPlatformInvariants(t *testing.T) {
	w := newWorkload(t, 0.2, false, 1)
	p := w.platform
	if len(p.It) == 0 || len(p.Ic) == 0 {
		t.Fatal("empty inventory halves")
	}
	// I_t and I_c are disjoint.
	seen := map[int]bool{}
	for _, s := range p.It {
		seen[s.ID] = true
	}
	for _, s := range p.Ic {
		if seen[s.ID] {
			t.Fatalf("sample %d in both halves", s.ID)
		}
	}
	// Conditional rows are probability distributions.
	for i, row := range p.Cond {
		var sum float64
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative probability in row %d", i)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if p.SetupTime <= 0 {
		t.Fatal("setup time not recorded")
	}
	if p.SetupMeter.TrainSampleVisits == 0 {
		t.Fatal("setup meter not charged")
	}
}

func TestNewPlatformErrors(t *testing.T) {
	if _, err := NewPlatform(nil, DefaultPlatformConfig(4, 4, 1)); err == nil {
		t.Error("empty inventory accepted")
	}
	set := dataset.Set{{ID: 0, X: []float64{1}, Observed: 0, True: 0}, {ID: 1, X: []float64{2}, Observed: 1, True: 1}}
	if _, err := NewPlatform(set, PlatformConfig{Classes: 1, InputDim: 1}); err == nil {
		t.Error("1-class config accepted")
	}
	if _, err := NewPlatform(set, PlatformConfig{Classes: 2, InputDim: 0}); err == nil {
		t.Error("0-dim config accepted")
	}
}

func TestProbabilityEstimationRecoversPairNoise(t *testing.T) {
	// With pair noise at rate η on a learnable task, P̃(y* = i+1 | ỹ = i+1)
	// should dominate its row, and P̃(y* = i | ỹ = i+1) should carry roughly
	// the mass of mislabelled class-i samples.
	w := newWorkload(t, 0.3, false, 2)
	cond := w.platform.Cond
	// At this test scale individual classes can land close together, so
	// assert in aggregate: the mean diagonal mass dominates and most rows
	// put their maximum on the diagonal.
	var diagSum float64
	diagMax := 0
	for i := 0; i < w.classes; i++ {
		diagSum += cond[i][i]
		isMax := true
		for j := 0; j < w.classes; j++ {
			if j != i && cond[i][j] > cond[i][i] {
				isMax = false
				break
			}
		}
		if isMax {
			diagMax++
		}
	}
	if mean := diagSum / float64(w.classes); mean < 0.5 {
		t.Errorf("mean diagonal P̃ = %v, want >= 0.5", mean)
	}
	if diagMax < w.classes/2 {
		t.Errorf("diagonal is row max in only %d/%d rows", diagMax, w.classes)
	}
	// Off-diagonal mass concentrates on the pair-noise source class
	// (ỹ = i+1 comes from y* = i).
	offDiagOK := 0
	for i := 0; i < w.classes; i++ {
		j := (i + 1) % w.classes
		// In row j, the largest off-diagonal entry should be column i.
		best, bestV := -1, 0.0
		for c := 0; c < w.classes; c++ {
			if c == j {
				continue
			}
			if cond[j][c] > bestV {
				best, bestV = c, cond[j][c]
			}
		}
		if best == i {
			offDiagOK++
		}
	}
	if offDiagOK < w.classes/2 {
		t.Errorf("pair-noise structure recovered in only %d/%d rows", offDiagOK, w.classes)
	}
}

func detectF1(t *testing.T, w *testWorkload, cfg Config) metrics.Detection {
	t.Helper()
	e := &ENLD{Platform: w.platform, Config: cfg}
	res, err := e.DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range w.incr {
		n, c := res.Noisy[smp.ID], res.Clean[smp.ID]
		if n == c {
			t.Fatalf("sample %d noisy=%v clean=%v", smp.ID, n, c)
		}
	}
	return metrics.EvaluateDetection(w.incr, res.Noisy)
}

func TestENLDDetectsNoise(t *testing.T) {
	w := newWorkload(t, 0.2, false, 3)
	det := detectF1(t, w, DefaultConfig(4))
	if det.F1 < 0.75 {
		t.Fatalf("ENLD F1 = %v", det.F1)
	}
}

func TestENLDOnGroupedTask(t *testing.T) {
	w := newWorkload(t, 0.3, true, 5)
	det := detectF1(t, w, DefaultConfig(6))
	if det.F1 < 0.55 {
		t.Fatalf("ENLD F1 on grouped task = %v", det.F1)
	}
}

func TestENLDConfigValidation(t *testing.T) {
	w := newWorkload(t, 0.1, false, 7)
	e := &ENLD{Platform: w.platform, Config: Config{}}
	if _, err := e.DetectFull(w.incr); err == nil {
		t.Error("zero config accepted")
	}
	e = &ENLD{Platform: nil, Config: DefaultConfig(1)}
	if _, err := e.DetectFull(w.incr); err == nil {
		t.Error("nil platform accepted")
	}
	e = &ENLD{Platform: w.platform, Config: DefaultConfig(1)}
	if _, err := e.DetectFull(nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestENLDSnapshotsAndDeterminism(t *testing.T) {
	w := newWorkload(t, 0.2, false, 8)
	cfg := DefaultConfig(9)
	e := &ENLD{Platform: w.platform, Config: cfg}
	a, err := e.DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Snapshots) != cfg.Iterations {
		t.Fatalf("%d snapshots, want %d", len(a.Snapshots), cfg.Iterations)
	}
	// Ambiguous counts should broadly shrink as fine-tuning proceeds
	// (Fig. 13(b)); require the final count not to exceed the first.
	first := a.Snapshots[0].AmbiguousCount
	last := a.Snapshots[len(a.Snapshots)-1].AmbiguousCount
	if last > first {
		t.Errorf("ambiguous grew: %d -> %d", first, last)
	}
	// Determinism: identical run, identical detection.
	b, err := (&ENLD{Platform: w.platform, Config: cfg}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Noisy) != len(b.Noisy) {
		t.Fatalf("non-deterministic: %d vs %d noisy", len(a.Noisy), len(b.Noisy))
	}
	for id := range a.Noisy {
		if !b.Noisy[id] {
			t.Fatal("non-deterministic noisy sets")
		}
	}
}

func TestENLDCleanSetMonotone(t *testing.T) {
	// S accumulates across iterations: the noisy set may only shrink.
	w := newWorkload(t, 0.3, false, 10)
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(11)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Snapshots); i++ {
		prev, cur := res.Snapshots[i-1].Noisy, res.Snapshots[i].Noisy
		for id := range cur {
			if !prev[id] {
				t.Fatalf("iteration %d reintroduced noisy sample %d", i, id)
			}
		}
	}
}

func TestENLDBeatsDefaultHighQuality(t *testing.T) {
	// The central claim (Figs. 4–7): fine-grained NLD with contrastive
	// sampling beats raw model disagreement, especially on confusable
	// classes. Compare ENLD's F1 against the Default rule computed inline.
	w := newWorkload(t, 0.3, true, 12)
	det := detectF1(t, w, DefaultConfig(13))

	defaultNoisy := map[int]bool{}
	for _, smp := range w.incr {
		if w.platform.Model.Predict(smp.X) != smp.Observed {
			defaultNoisy[smp.ID] = true
		}
	}
	defaultDet := metrics.EvaluateDetection(w.incr, defaultNoisy)
	if det.F1 < defaultDet.F1-0.02 {
		t.Fatalf("ENLD F1 %v below Default %v", det.F1, defaultDet.F1)
	}
}

func TestENLDSelectedInventoryIsMostlyClean(t *testing.T) {
	w := newWorkload(t, 0.2, false, 14)
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(15)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectedInventory) == 0 {
		t.Fatal("no inventory samples selected")
	}
	byID := map[int]dataset.Sample{}
	for _, smp := range w.platform.Ic {
		byID[smp.ID] = smp
	}
	clean := 0
	for id := range res.SelectedInventory {
		smp, ok := byID[id]
		if !ok {
			t.Fatalf("selected ID %d not in I_c", id)
		}
		if !smp.IsNoisy() {
			clean++
		}
	}
	if frac := float64(clean) / float64(len(res.SelectedInventory)); frac < 0.9 {
		t.Fatalf("selected inventory only %v clean", frac)
	}
}

func TestENLDMissingLabels(t *testing.T) {
	w := newWorkload(t, 0.2, false, 16)
	set := w.incr.Clone()
	masked, err := noise.MaskMissing(set, 0.25, mat.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if masked == 0 {
		t.Fatal("nothing masked")
	}
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(18)}).DetectFull(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PseudoLabels) != masked {
		t.Fatalf("%d pseudo labels for %d masked samples", len(res.PseudoLabels), masked)
	}
	// Pseudo labels should usually recover the true label on this easy task.
	byID := map[int]int{}
	for _, smp := range set {
		byID[smp.ID] = smp.True
	}
	correct := 0
	for id, lbl := range res.PseudoLabels {
		if lbl == byID[id] {
			correct++
		}
	}
	if acc := float64(correct) / float64(masked); acc < 0.7 {
		t.Fatalf("pseudo-label accuracy %v", acc)
	}
	// Missing samples are flagged noisy in the main partition.
	for _, smp := range set {
		if smp.Observed == dataset.Missing && !res.Noisy[smp.ID] {
			t.Fatal("missing-label sample marked clean")
		}
	}
}

func TestENLDAblationsRun(t *testing.T) {
	w := newWorkload(t, 0.3, true, 19)
	base := DefaultConfig(20)

	variants := map[string]Config{}
	v1 := base
	v1.Strategy = sampling.Random{}
	variants["enld-1"] = v1
	v2 := base
	v2.DisableMajorityVoting = true
	variants["enld-2"] = v2
	v3 := base
	v3.DisableCleanMerge = true
	variants["enld-3"] = v3
	v4 := base
	v4.Strategy = sampling.Contrastive{SameLabel: true}
	variants["enld-4"] = v4

	origin := detectF1(t, w, base)
	for name, cfg := range variants {
		det := detectF1(t, w, cfg)
		t.Logf("%s F1 = %.4f (origin %.4f)", name, det.F1, origin.F1)
		if det.F1 <= 0 {
			t.Errorf("%s produced zero F1", name)
		}
	}
}

func TestModelUpdateImprovesAccuracy(t *testing.T) {
	// Table II: after accumulating clean inventory selections, the updated
	// model's true-label accuracy on held-out data should not degrade.
	w := newWorkload(t, 0.3, false, 21)
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(22)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	before := w.platform.TrueAccuracy(w.incr)
	if err := w.platform.ModelUpdate(res.SelectedInventory); err != nil {
		t.Fatal(err)
	}
	after := w.platform.TrueAccuracy(w.incr)
	t.Logf("true accuracy before=%v after=%v", before, after)
	if after < before-0.05 {
		t.Fatalf("model update degraded accuracy: %v -> %v", before, after)
	}
	// The halves must have swapped.
	if len(w.platform.It) == 0 || len(w.platform.Ic) == 0 {
		t.Fatal("inventory halves lost")
	}
}

func TestModelUpdateErrors(t *testing.T) {
	w := newWorkload(t, 0.1, false, 23)
	if err := w.platform.ModelUpdate(nil); err == nil {
		t.Error("empty selection accepted")
	}
	if err := w.platform.ModelUpdate(map[int]bool{-99: true}); err == nil {
		t.Error("unknown IDs accepted")
	}
}

func TestENLDChargesWork(t *testing.T) {
	w := newWorkload(t, 0.2, false, 24)
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(25)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.TrainSampleVisits == 0 || res.Meter.ForwardPasses == 0 || res.Meter.KNNQueries == 0 {
		t.Fatalf("meter incomplete: %+v", res.Meter)
	}
	if res.Process <= 0 {
		t.Fatal("process time not recorded")
	}
}

func TestPlatformSaveLoadRoundTrip(t *testing.T) {
	w := newWorkload(t, 0.2, false, 80)
	var buf bytes.Buffer
	if err := w.platform.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlatform(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The restored platform must serve detections identically.
	a, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(81)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&ENLD{Platform: loaded, Config: DefaultConfig(81)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Noisy) != len(b.Noisy) {
		t.Fatalf("restored platform detects differently: %d vs %d", len(a.Noisy), len(b.Noisy))
	}
	for id := range a.Noisy {
		if !b.Noisy[id] {
			t.Fatal("restored platform noisy set differs")
		}
	}
	if loaded.SetupTime != w.platform.SetupTime {
		t.Fatal("setup time not preserved")
	}
}

func TestLoadPlatformRejectsGarbage(t *testing.T) {
	if _, err := LoadPlatform(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestModelUpdateSwapsHalves(t *testing.T) {
	w := newWorkload(t, 0.2, false, 85)
	itIDs := map[int]bool{}
	for _, s := range w.platform.It {
		itIDs[s.ID] = true
	}
	res, err := (&ENLD{Platform: w.platform, Config: DefaultConfig(86)}).DetectFull(w.incr)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.platform.ModelUpdate(res.SelectedInventory); err != nil {
		t.Fatal(err)
	}
	// After the swap (Algorithm 4 line 2), the old I_t is the new I_c.
	for _, s := range w.platform.Ic {
		if !itIDs[s.ID] {
			t.Fatal("I_c is not the former I_t after model update")
		}
	}
	for _, s := range w.platform.It {
		if itIDs[s.ID] {
			t.Fatal("I_t still contains former I_t samples after swap")
		}
	}
}

func TestTierLadder(t *testing.T) {
	base := DefaultConfig(7)
	base.ANN = true // ladder rungs override the base fast-path settings
	base.Float32 = true
	ladder := base.TierLadder()
	if len(ladder) != 3 {
		t.Fatalf("ladder has %d rungs, want 3", len(ladder))
	}
	want := []struct{ ann, f32 bool }{{false, false}, {true, false}, {true, true}}
	for i, w := range want {
		if ladder[i].ANN != w.ann || ladder[i].Float32 != w.f32 {
			t.Errorf("rung %d: ANN=%v Float32=%v, want ANN=%v Float32=%v",
				i, ladder[i].ANN, ladder[i].Float32, w.ann, w.f32)
		}
		if ladder[i].K != base.K || ladder[i].Seed != base.Seed {
			t.Errorf("rung %d lost base hyperparameters", i)
		}
	}
}
