package workload

import (
	"bytes"
	"context"
	"testing"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/lake"
	"enld/internal/obs"
)

// stubDetector labels every sample clean instantly — replay mechanics under
// test, not detection quality.
type stubDetector struct{}

func (stubDetector) Name() string { return "stub" }

func (stubDetector) Detect(data dataset.Set) (*detect.Result, error) {
	res := detect.NewResult()
	for _, s := range data {
		res.MarkClean(s.ID)
	}
	return res, nil
}

// testPool builds a tiny clean pool with `classes` labels.
func testPool(n, classes int) dataset.Set {
	pool := make(dataset.Set, n)
	for i := range pool {
		pool[i] = dataset.Sample{ID: i, X: []float64{float64(i)}, Observed: i % classes, True: i % classes}
	}
	return pool
}

func TestMaterializeDeterministic(t *testing.T) {
	tr, err := GenTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	pool := testPool(200, 4)
	a, err := Materialize(tr, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(tr, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(tr.Catalog) {
		t.Fatalf("materialized %d entries, want %d", len(a), len(tr.Catalog))
	}
	for j := range a {
		if len(a[j]) != tr.Catalog[j].Samples {
			t.Fatalf("entry %d has %d samples, want %d", j, len(a[j]), tr.Catalog[j].Samples)
		}
		for i := range a[j] {
			if sampleKey(a[j][i]) != sampleKey(b[j][i]) {
				t.Fatalf("entry %d sample %d differs between materializations", j, i)
			}
		}
	}
	// A noisy entry must actually carry flipped labels at roughly its rate,
	// and materialization must never mutate the pool.
	for j, meta := range tr.Catalog {
		flipped := 0
		for _, s := range a[j] {
			if s.Observed != s.True {
				flipped++
			}
		}
		if meta.NoiseRate == 0 && flipped != 0 {
			t.Errorf("clean entry %d has %d flipped labels", j, flipped)
		}
		if meta.NoiseRate >= 0.2 && flipped == 0 {
			t.Errorf("entry %d (rate %.2f) has no flipped labels in %d samples", j, meta.NoiseRate, len(a[j]))
		}
	}
	for i, s := range pool {
		if s.Observed != i%4 || s.True != i%4 {
			t.Fatalf("pool sample %d mutated by materialization", i)
		}
	}
}

func sampleKey(s dataset.Sample) [3]int { return [3]int{s.ID, s.Observed, s.True} }

// TestPlaySummarize replays a short trace in-process at high speed and
// checks the full measurement loop: reports, generator counters, and the
// scrape-derived ScenarioResult with an SLO verdict.
func TestPlaySummarize(t *testing.T) {
	spec := testSpec()
	spec.Phases = []Phase{{Name: "steady", DurationSeconds: 2, Rate: 20}}
	spec.Arrivals = ArrivalsUniform
	spec.SLO = SLO{
		MaxP99TaskSeconds: 5,
		MaxDeadLetters:    intp(0),
		MinCompletedRatio: 1.0,
	}
	tr, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := Materialize(tr, testPool(200, 4), 4)
	if err != nil {
		t.Fatal(err)
	}

	svc, err := lake.NewService(stubDetector{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc.SetObs(reg)

	res, err := Play(context.Background(), svc, tr, catalog, PlayOptions{Speed: 50, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != len(tr.Events) {
		t.Fatalf("offered %d of %d events", res.Offered, len(tr.Events))
	}
	if len(res.Reports) != len(tr.Events) {
		t.Fatalf("%d reports for %d events", len(res.Reports), len(tr.Events))
	}
	for i, rep := range res.Reports {
		if rep.TaskID != i {
			t.Fatalf("report %d has task ID %d (not sorted)", i, rep.TaskID)
		}
		if rep.Err != nil {
			t.Fatalf("task %d failed: %v", i, rep.Err)
		}
	}

	sum, err := Summarize(spec, res, reg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != len(tr.Events) || sum.Outcomes["ok"] != len(tr.Events) {
		t.Fatalf("summary completed=%d ok=%d, want %d", sum.Completed, sum.Outcomes["ok"], len(tr.Events))
	}
	if sum.Outcomes["dead_letter"] != 0 || sum.Outcomes["degraded"] != 0 {
		t.Fatalf("unexpected non-ok outcomes: %v", sum.Outcomes)
	}
	if sum.TaskSeconds.Count != uint64(len(tr.Events)) || sum.QueuedSeconds.Count != uint64(len(tr.Events)) {
		t.Fatalf("latency counts task=%d queued=%d, want %d", sum.TaskSeconds.Count, sum.QueuedSeconds.Count, len(tr.Events))
	}
	if sum.TaskSeconds.P99 <= 0 || sum.TaskSeconds.P99 > 1 {
		t.Fatalf("task p99 = %v, implausible for a stub detector", sum.TaskSeconds.P99)
	}
	if sum.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", sum.ThroughputRPS)
	}
	if !sum.Pass || len(sum.Violations) != 0 {
		t.Fatalf("SLO failed: %v", sum.Violations)
	}

	// The generator's own metrics landed in the same registry.
	if got, ok := counterValue(t, reg, "enld_load_offered_total"); !ok || got != float64(len(tr.Events)) {
		t.Fatalf("enld_load_offered_total = %v, %v; want %d", got, ok, len(tr.Events))
	}
}

// TestPlayCancel: cancelling mid-replay stops submission but still returns a
// coherent result.
func TestPlayCancel(t *testing.T) {
	spec := testSpec()
	spec.Phases = []Phase{{Name: "steady", DurationSeconds: 60, Rate: 10}}
	spec.Arrivals = ArrivalsUniform
	tr, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := Materialize(tr, testPool(200, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := lake.NewService(stubDetector{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Play(ctx, svc, tr, catalog, PlayOptions{Speed: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered >= len(tr.Events) {
		t.Fatalf("cancelled replay offered all %d events", res.Offered)
	}
	if len(res.Reports) > res.Offered {
		t.Fatalf("%d reports from %d offered", len(res.Reports), res.Offered)
	}
}

func counterValue(t *testing.T, reg *obs.Registry, name string) (float64, bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return parsed.Counter(name, nil)
}
