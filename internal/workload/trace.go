package workload

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"enld/internal/mat"
)

// Event is one scheduled arrival: at offset At from replay start, submit the
// catalog dataset Entry as task Task.
type Event struct {
	Task  int           `json:"task"`
	At    time.Duration `json:"at_nanos"`
	Entry int           `json:"entry"`
	Phase string        `json:"phase"`
}

// EntryMeta describes one catalog dataset: its size and the noise applied to
// it, both drawn from the spec's mixes at generation time so the trace —
// not the replayer — fixes what every arrival looks like.
type EntryMeta struct {
	Samples   int     `json:"samples"`
	NoiseRate float64 `json:"noise_rate"`
	NoiseKind string  `json:"noise_kind"`
}

// Trace is a fully generated workload: the catalog assignment plus the
// timed event schedule. Generation is single-goroutine and seed-driven, so
// the same (spec, seed) always yields a byte-identical trace regardless of
// GOMAXPROCS or the replay worker count — the determinism contract the rest
// of the repository holds, extended to traffic.
type Trace struct {
	Scenario string        `json:"scenario"`
	Seed     uint64        `json:"seed"`
	Duration time.Duration `json:"duration_nanos"`
	Catalog  []EntryMeta   `json:"catalog"`
	Events   []Event       `json:"events"`
}

// traceSeedSalt decorrelates the trace RNG stream from every other consumer
// of the spec seed (platform setup, catalog materialization).
const traceSeedSalt = 0x9e3779b97f4a7c15

// GenTrace generates the trace for spec: catalog entries get sizes and
// noise classes by weighted draw, then each phase emits arrivals at its
// (possibly ramping) rate with Zipf-skewed entry popularity.
func GenTrace(spec Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := mat.NewRNG(spec.Seed ^ traceSeedSalt)
	t := &Trace{
		Scenario: spec.Name,
		Seed:     spec.Seed,
		Duration: spec.Duration(),
		Catalog:  make([]EntryMeta, spec.Datasets),
	}

	sizeCum := cumulativeWeights(len(spec.Sizes), func(i int) float64 { return spec.Sizes[i].Weight })
	noiseCum := cumulativeWeights(len(spec.NoiseMix), func(i int) float64 { return spec.NoiseMix[i].Weight })
	for j := range t.Catalog {
		size := spec.Sizes[pickCumulative(sizeCum, rng.Float64())]
		nc := spec.NoiseMix[pickCumulative(noiseCum, rng.Float64())]
		kind := nc.Kind
		if kind == "" {
			kind = NoisePair
		}
		if nc.Rate == 0 {
			kind = "none"
		}
		t.Catalog[j] = EntryMeta{Samples: size.Samples, NoiseRate: nc.Rate, NoiseKind: kind}
	}

	// Popularity: Zipf weights 1/(j+1)^skew over the catalog, drawn by
	// inverse-CDF so a single uniform variate decides each event's entry.
	zipfCum := cumulativeWeights(spec.Datasets, func(j int) float64 {
		return math.Pow(float64(j+1), -spec.Skew)
	})

	uniform := spec.Arrivals == ArrivalsUniform
	task := 0
	phaseStart := 0.0
	for _, p := range spec.Phases {
		// Walk the phase in time; the instantaneous rate interpolates
		// linearly from Rate to RateEnd (equal when not ramping). The next
		// gap is drawn at the current instantaneous rate — exact for steady
		// phases, a faithful discretization for ramps.
		rateEnd := p.RateEnd
		if rateEnd == 0 {
			rateEnd = p.Rate
		}
		elapsed := 0.0
		for {
			frac := elapsed / p.DurationSeconds
			rate := p.Rate + (rateEnd-p.Rate)*frac
			var gap float64
			if rate <= 0 {
				// A ramp touching zero contributes no further arrivals in
				// any window where the rate is zero; step forward 10ms to
				// find where it becomes positive again.
				gap = 0.01
			} else if uniform {
				gap = 1 / rate
			} else {
				// Exponential inter-arrival (Poisson process). 1-U avoids
				// log(0); the draw order is part of the determinism
				// contract, so nothing here may be reordered.
				gap = -math.Log(1-rng.Float64()) / rate
			}
			elapsed += gap
			if elapsed >= p.DurationSeconds {
				break
			}
			if rate <= 0 {
				continue
			}
			at := phaseStart + elapsed
			t.Events = append(t.Events, Event{
				Task:  task,
				At:    time.Duration(at * float64(time.Second)),
				Entry: pickCumulative(zipfCum, rng.Float64()),
				Phase: p.Name,
			})
			task++
		}
		phaseStart += p.DurationSeconds
	}
	if len(t.Events) == 0 {
		return nil, fmt.Errorf("workload: scenario %s generated an empty trace", spec.Name)
	}
	return t, nil
}

// cumulativeWeights normalizes the weights into a cumulative distribution.
func cumulativeWeights(n int, weight func(int) float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += weight(i)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding excluding the last class
	return cum
}

// pickCumulative returns the first index whose cumulative weight reaches u.
func pickCumulative(cum []float64, u float64) int {
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// Encode renders the trace canonically: fixed-field JSON with no maps, so
// equal traces encode to equal bytes. The determinism test pins the FNV-1a
// hash of this encoding.
func (t *Trace) Encode() ([]byte, error) {
	return json.Marshal(t)
}

// Hash returns the FNV-1a 64-bit hash of the canonical encoding.
func (t *Trace) Hash() (uint64, error) {
	raw, err := t.Encode()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64(), nil
}

// Rates returns the offered request count per phase name, for logging.
func (t *Trace) Rates() map[string]int {
	out := make(map[string]int)
	for _, e := range t.Events {
		out[e.Phase]++
	}
	return out
}
