package workload

import (
	"bytes"
	"math"
	"runtime"
	"testing"
	"time"
)

// testSpec is the fixed scenario the determinism pin runs on.
func testSpec() Spec {
	return Spec{
		Name:    "pinned",
		Seed:    7,
		Preset:  "emnist",
		Method:  "default",
		Workers: 2,
		Phases: []Phase{
			{Name: "warm", DurationSeconds: 5, Rate: 4},
			{Name: "burst", DurationSeconds: 2, Rate: 20},
			{Name: "ramp", DurationSeconds: 5, Rate: 2, RateEnd: 10},
		},
		Datasets: 8,
		Skew:     1.1,
		Sizes: []SizeClass{
			{Samples: 30, Weight: 3},
			{Samples: 90, Weight: 1},
		},
		NoiseMix: []NoiseClass{
			{Rate: 0, Weight: 1},
			{Rate: 0.2, Kind: NoisePair, Weight: 2},
			{Rate: 0.4, Kind: NoiseSymmetric, Weight: 1},
		},
	}
}

// pinnedTraceHash is the FNV-1a hash of testSpec's canonical trace
// encoding. It pins the generator's determinism contract: any change to the
// RNG draw order, the Zipf weighting, the arrival math or the encoding is a
// trace-format break and must update this constant (and be called out as a
// breaking change in the PR).
const pinnedTraceHash uint64 = 0x30bb3c6fcfdae2e3

func TestGenTraceDeterministic(t *testing.T) {
	// Generation must not depend on available parallelism: run once at the
	// ambient GOMAXPROCS and once pinned to 1.
	a, err := GenTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	b, err := GenTrace(testSpec())
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	rawA, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("same spec generated different traces")
	}
	h, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != pinnedTraceHash {
		t.Fatalf("trace hash = %#x, want %#x — the generator's output changed; "+
			"if intentional, update pinnedTraceHash and flag the trace-format break", h, pinnedTraceHash)
	}
}

func TestGenTraceShape(t *testing.T) {
	spec := testSpec()
	tr, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Catalog) != spec.Datasets {
		t.Fatalf("catalog size %d, want %d", len(tr.Catalog), spec.Datasets)
	}
	for j, m := range tr.Catalog {
		if m.Samples != 30 && m.Samples != 90 {
			t.Errorf("catalog[%d].Samples = %d, not in the size mix", j, m.Samples)
		}
		if m.NoiseRate == 0 && m.NoiseKind != "none" {
			t.Errorf("catalog[%d]: clean entry with kind %q", j, m.NoiseKind)
		}
	}
	// Events are strictly ordered in time with sequential task IDs, inside
	// the scheduled duration, and reference real catalog entries.
	var last time.Duration
	for i, e := range tr.Events {
		if e.Task != i {
			t.Fatalf("event %d has task ID %d", i, e.Task)
		}
		if e.At < last {
			t.Fatalf("event %d at %s before previous %s", i, e.At, last)
		}
		if e.At >= tr.Duration {
			t.Fatalf("event %d at %s past duration %s", i, e.At, tr.Duration)
		}
		if e.Entry < 0 || e.Entry >= spec.Datasets {
			t.Fatalf("event %d references entry %d", i, e.Entry)
		}
		last = e.At
	}
	// Offered load should be in the right ballpark: expectation is
	// 5·4 + 2·20 + 5·6 = 90 events; Poisson draws put ±40% far outside
	// plausible variance.
	if n := len(tr.Events); n < 54 || n > 126 {
		t.Fatalf("%d events for an expected 90", n)
	}
	// The burst phase must offer a higher rate than the warm phase.
	rates := tr.Rates()
	warm := float64(rates["warm"]) / 5
	burst := float64(rates["burst"]) / 2
	if burst <= warm*2 {
		t.Fatalf("burst rate %.1f/s not clearly above warm %.1f/s", burst, warm)
	}
}

// TestZipfSkew: with a strong skew the hottest entry dominates; with zero
// skew popularity is near-uniform. This guards the popularity weighting, the
// dimension that makes cache-like locality real in replay.
func TestZipfSkew(t *testing.T) {
	spec := testSpec()
	spec.Phases = []Phase{{Name: "steady", DurationSeconds: 400, Rate: 10}}
	spec.Skew = 2.0
	tr, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, spec.Datasets)
	for _, e := range tr.Events {
		counts[e.Entry]++
	}
	total := len(tr.Events)
	// Zipf s=2 over 8 entries gives entry 0 a ~0.83/1.34 ≈ 62% share.
	share0 := float64(counts[0]) / float64(total)
	if share0 < 0.5 || share0 > 0.75 {
		t.Fatalf("skew=2: hottest entry share = %.3f, want ≈ 0.62", share0)
	}
	if counts[0] <= counts[spec.Datasets-1]*4 {
		t.Fatalf("skew=2: head %d not clearly above tail %d", counts[0], counts[spec.Datasets-1])
	}

	spec.Skew = 0
	tr, err = GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts = make([]int, spec.Datasets)
	for _, e := range tr.Events {
		counts[e.Entry]++
	}
	want := float64(len(tr.Events)) / float64(spec.Datasets)
	for j, c := range counts {
		if math.Abs(float64(c)-want) > want*0.35 {
			t.Fatalf("skew=0: entry %d drew %d of an expected %.0f (not uniform)", j, c, want)
		}
	}
}

// TestUniformArrivals: the uniform model spaces arrivals exactly 1/rate
// apart within a steady phase.
func TestUniformArrivals(t *testing.T) {
	spec := testSpec()
	spec.Arrivals = ArrivalsUniform
	spec.Phases = []Phase{{Name: "steady", DurationSeconds: 3, Rate: 10}}
	tr, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 29 { // arrivals at 0.1s .. 2.9s
		t.Fatalf("%d events, want 29", len(tr.Events))
	}
	for i := 1; i < len(tr.Events); i++ {
		gap := (tr.Events[i].At - tr.Events[i-1].At).Seconds()
		if math.Abs(gap-0.1) > 1e-6 {
			t.Fatalf("gap %d = %vs, want 0.1s", i, gap)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	broken := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Phases = nil },
		func(s *Spec) { s.Phases[0].DurationSeconds = 0 },
		func(s *Spec) { s.Phases[0].Rate, s.Phases[0].RateEnd = 0, 0 },
		func(s *Spec) { s.Phases[0].Rate = -1 },
		func(s *Spec) { s.Arrivals = "bursty" },
		func(s *Spec) { s.Datasets = 0 },
		func(s *Spec) { s.Skew = -0.5 },
		func(s *Spec) { s.Sizes = nil },
		func(s *Spec) { s.Sizes[0].Samples = 0 },
		func(s *Spec) { s.Sizes[0].Weight, s.Sizes[1].Weight = 0, 0 },
		func(s *Spec) { s.NoiseMix[0].Rate = 1 },
		func(s *Spec) { s.NoiseMix[0].Kind = "gaussian" },
		func(s *Spec) { s.NoiseMix[0].Weight = -1 },
		func(s *Spec) { s.Fault.FailRate = 1.5 },
		func(s *Spec) { s.Fault.PanicRate = -0.1 },
		func(s *Spec) { s.Fault.SlowLatencyMS = -5 },
		func(s *Spec) { s.Policy.Retries = -1 },
		func(s *Spec) { s.Policy.QueueDepth = -4 },
		func(s *Spec) { s.Policy.MaxQueueWaitMS = -10 },
		func(s *Spec) { s.Brownout = &BrownoutSpec{} }, // no pressure signal
		func(s *Spec) { s.Brownout = &BrownoutSpec{QueueHigh: 4, QueueLow: 8} },
		func(s *Spec) { s.Brownout = &BrownoutSpec{P95HighMS: 50, P95LowMS: 80} },
		func(s *Spec) { s.SLO.MaxP99TaskSeconds = -1 },
		func(s *Spec) { s.SLO.MinCompletedRatio = 2 },
		func(s *Spec) { s.SLO.MinTierF1 = map[string]float64{"": 0.5} },
	}
	for i, mutate := range broken {
		spec := testSpec()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	// A spec carrying the full overload-control surface must validate: bounded
	// admission, a sound brownout ladder config, and shed-aware SLOs.
	full := testSpec()
	full.Policy = PolicySpec{TaskTimeoutSeconds: 2, Retries: 1, QueueDepth: 32, MaxQueueWaitMS: 200}
	full.Brownout = &BrownoutSpec{QueueHigh: 24, QueueLow: 4, P95HighMS: 400, P95LowMS: 100, IntervalMS: 100}
	full.SLO = SLO{
		MaxP99TaskSeconds: 1, MinCompletedRatio: 1,
		MaxShedFraction: floatp(0.3), MaxAbandoned: intp(0),
		MinTierF1: map[string]float64{"full": 0.9, "ann": 0.8},
	}
	if err := full.Validate(); err != nil {
		t.Errorf("overload-control spec rejected: %v", err)
	}
}
