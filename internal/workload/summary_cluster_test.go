package workload

import (
	"net/http/httptest"
	"testing"

	"enld/internal/lake"
	"enld/internal/obs"
)

// The coordinator satisfies the same Run contract as the service; the
// compile-time pin for lake.Service lives here, the one for
// cluster.Coordinator lives in cmd/loadgen (workload must not import the
// cluster package).
var _ Submitter = (*lake.Service)(nil)

// fakeShardRegistry builds a registry carrying the families summarizeParsed
// requires, as one shard of a cluster would expose them.
func fakeShardRegistry(ok, degraded uint64, latencies ...float64) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("enld_lake_tasks_total", "t", obs.Label{Key: "outcome", Value: "ok"}).Add(ok)
	reg.Counter("enld_lake_tasks_total", "t", obs.Label{Key: "outcome", Value: "degraded"}).Add(degraded)
	reg.Counter("enld_lake_tasks_total", "t", obs.Label{Key: "outcome", Value: "dead_letter"})
	reg.Gauge("enld_lake_brownout_max_tier", "g").Set(float64(ok % 3))
	task := reg.Histogram("enld_lake_task_seconds", "h", obs.DefBuckets)
	queued := reg.Histogram("enld_lake_queued_seconds", "h", obs.DefBuckets)
	for _, v := range latencies {
		task.Observe(v)
		queued.Observe(v / 10)
	}
	return reg
}

// TestSummarizeScrapeMultiEndpoint pins the multi-node scrape path: a
// comma-separated -scrape-url list is scraped endpoint-by-endpoint, merged
// under the cluster rules, and reduced by the same code as a single
// endpoint — counters and histogram counts sum, the max-tier gauge takes
// the cluster-wide max.
func TestSummarizeScrapeMultiEndpoint(t *testing.T) {
	srvA := httptest.NewServer(fakeShardRegistry(5, 1, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6).Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(fakeShardRegistry(4, 0, 0.1, 0.2, 0.3, 0.4).Handler())
	defer srvB.Close()

	res, err := SummarizeScrape("multi", srvA.URL+"/metrics,"+srvB.URL+"/metrics", SLO{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("merged completed = %d, want 10", res.Completed)
	}
	if res.Outcomes["ok"] != 9 || res.Outcomes["degraded"] != 1 {
		t.Fatalf("merged outcomes = %v", res.Outcomes)
	}
	if res.TaskSeconds.Count != 10 {
		t.Fatalf("merged latency count = %d, want 10", res.TaskSeconds.Count)
	}
	if res.BrownoutMaxTier != 2 {
		t.Fatalf("cluster max tier = %d, want max over shards (2)", res.BrownoutMaxTier)
	}
	if res.ThroughputRPS != 1.0 {
		t.Fatalf("throughput = %v, want 1.0", res.ThroughputRPS)
	}

	// A single endpoint still summarizes exactly as before.
	single, err := SummarizeScrape("single", srvA.URL+"/metrics", SLO{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if single.Completed != 6 || single.TaskSeconds.Count != 6 || single.BrownoutMaxTier != 2 {
		t.Fatalf("single scrape regressed: %+v", single)
	}

	if _, err := SummarizeScrape("bad", srvA.URL+"/metrics,,", SLO{}, 10); err == nil {
		t.Fatal("empty URL in list accepted")
	}
}
