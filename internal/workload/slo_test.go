package workload

import (
	"strings"
	"testing"
)

func intp(v int) *int { return &v }

func floatp(v float64) *float64 { return &v }

func baseResult() *ScenarioResult {
	return &ScenarioResult{
		Name:          "t",
		Offered:       100,
		Completed:     100,
		ThroughputRPS: 10,
		Outcomes:      map[string]int{"ok": 98, "degraded": 1, "dead_letter": 1},
		TaskSeconds:   LatencySummary{P50: 0.01, P95: 0.05, P99: 0.2, Count: 100},
		QueuedSeconds: LatencySummary{P50: 0.001, P95: 0.002, P99: 0.01, Count: 100},
		BreakerOpens:  1,
	}
}

func TestSLOEvaluate(t *testing.T) {
	cases := []struct {
		name   string
		slo    SLO
		mutate func(*ScenarioResult)
		want   string // substring of the single expected violation; "" = pass
	}{
		{name: "empty slo passes", slo: SLO{}},
		{
			name: "all objectives at the boundary pass",
			slo: SLO{
				MaxP50TaskSeconds: 0.01, MaxP95TaskSeconds: 0.05, MaxP99TaskSeconds: 0.2,
				MaxP99QueuedSeconds: 0.01, MinThroughputRPS: 10,
				MaxDeadLetters: intp(1), MaxDegraded: intp(1), MaxBreakerOpens: intp(1),
				MinCompletedRatio: 1.0,
			},
		},
		{
			name: "p99 over limit",
			slo:  SLO{MaxP99TaskSeconds: 0.1},
			want: "task p99",
		},
		{
			name: "queued p99 over limit",
			slo:  SLO{MaxP99QueuedSeconds: 0.005},
			want: "queued p99",
		},
		{
			name: "throughput under floor",
			slo:  SLO{MinThroughputRPS: 10.5},
			want: "throughput",
		},
		{
			name: "zero dead-letters demanded",
			slo:  SLO{MaxDeadLetters: intp(0)},
			want: "dead-lettered",
		},
		{
			name: "breaker must never open",
			slo:  SLO{MaxBreakerOpens: intp(0)},
			want: "breaker opens",
		},
		{
			name:   "lost work breaches completed ratio",
			slo:    SLO{MinCompletedRatio: 1.0},
			mutate: func(r *ScenarioResult) { r.Completed = 99 },
			want:   "accounted ratio",
		},
		{
			name: "shed work is accounted, not lost",
			slo:  SLO{MinCompletedRatio: 1.0},
			mutate: func(r *ScenarioResult) {
				r.Completed = 90
				r.Outcomes["shed"] = 8
				r.Outcomes["abandoned"] = 2
			},
		},
		{
			name: "shed fraction over limit",
			slo:  SLO{MaxShedFraction: floatp(0.05)},
			mutate: func(r *ScenarioResult) {
				r.Completed = 90
				r.Outcomes["shed"] = 10
			},
			want: "shed fraction",
		},
		{
			name: "zero shedding demanded and met",
			slo:  SLO{MaxShedFraction: floatp(0)},
		},
		{
			name:   "abandoned tasks over limit",
			slo:    SLO{MaxAbandoned: intp(0)},
			mutate: func(r *ScenarioResult) { r.Outcomes["abandoned"] = 3 },
			want:   "abandoned",
		},
		{
			name: "tier quality under floor",
			slo:  SLO{MinTierF1: map[string]float64{"ann": 0.8}},
			mutate: func(r *ScenarioResult) {
				r.TierF1 = map[string]TierF1{"ann": {MeanF1: 0.7, Tasks: 40}}
			},
			want: "tier ann mean F1",
		},
		{
			name: "tier quality at floor passes",
			slo:  SLO{MinTierF1: map[string]float64{"ann": 0.8, "full": 0.9}},
			mutate: func(r *ScenarioResult) {
				r.TierF1 = map[string]TierF1{"ann": {MeanF1: 0.8, Tasks: 40}, "full": {MeanF1: 0.95, Tasks: 60}}
			},
		},
		{
			name: "unserved tier has no quality evidence",
			slo:  SLO{MinTierF1: map[string]float64{"fallback": 0.5}},
		},
		{
			name:   "empty histogram is unmeasurable, not fast",
			slo:    SLO{MaxP99TaskSeconds: 1},
			mutate: func(r *ScenarioResult) { r.TaskSeconds = LatencySummary{} },
			want:   "unmeasurable",
		},
	}
	for _, c := range cases {
		r := baseResult()
		if c.mutate != nil {
			c.mutate(r)
		}
		got := c.slo.Evaluate(r)
		if c.want == "" {
			if len(got) != 0 {
				t.Errorf("%s: unexpected violations %v", c.name, got)
			}
			continue
		}
		if len(got) != 1 || !strings.Contains(got[0], c.want) {
			t.Errorf("%s: violations = %v, want one containing %q", c.name, got, c.want)
		}
	}
}

func TestSLOEmpty(t *testing.T) {
	if !(SLO{}).Empty() {
		t.Error("zero SLO not Empty")
	}
	if (SLO{MaxP99TaskSeconds: 1}).Empty() {
		t.Error("latency objective reported Empty")
	}
	if (SLO{MaxDeadLetters: intp(0)}).Empty() {
		t.Error("zero-dead-letters objective reported Empty")
	}
	if (SLO{MaxShedFraction: floatp(0)}).Empty() {
		t.Error("zero-shed objective reported Empty")
	}
	if (SLO{MinTierF1: map[string]float64{"full": 0.9}}).Empty() {
		t.Error("tier-F1 objective reported Empty")
	}
}

func TestSLOValidate(t *testing.T) {
	for name, bad := range map[string]SLO{
		"negative latency":   {MaxP99TaskSeconds: -1},
		"ratio above one":    {MinCompletedRatio: 1.5},
		"shed fraction >1":   {MaxShedFraction: floatp(2)},
		"negative abandoned": {MaxAbandoned: intp(-1)},
		"tier floor >1":      {MinTierF1: map[string]float64{"full": 1.5}},
		"unnamed tier":       {MinTierF1: map[string]float64{"": 0.5}},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	ok := SLO{MaxP99TaskSeconds: 1, MaxShedFraction: floatp(0.2), MinTierF1: map[string]float64{"full": 0.9}}
	if err := ok.validate(); err != nil {
		t.Errorf("sound SLO rejected: %v", err)
	}
}
