// Package workload is the traffic generator and latency-SLO harness for the
// lake serving stack: declarative workload specs (arrival rate phases with
// ramps and bursts, Zipf-skewed dataset popularity, dataset-size and
// noise-rate mixes), deterministic seed-driven trace generation, replay
// against a live lake.Service, and SLO evaluation over the latency
// histograms the service already exports through internal/obs.
//
// The shape of the API follows ReqBench's Workload (gen_trace → play):
// generation and replay are separate so a trace can be inspected, hashed and
// pinned by tests before anything runs, and the same trace replays
// identically at any worker count. The noise-rate mix makes load scenarios
// vary detection difficulty — not just arrival rate — as the noisy-label
// benchmarking literature prescribes: a burst of high-noise datasets costs
// more per task than the same burst of clean ones.
package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"enld/internal/lake"
)

// Phase is one segment of the arrival schedule. Rate is the arrival rate in
// requests per second at the start of the phase; RateEnd, when non-zero,
// ramps the instantaneous rate linearly toward it across the phase (a burst
// is simply a short phase at a high rate).
type Phase struct {
	Name            string  `json:"name"`
	DurationSeconds float64 `json:"duration_seconds"`
	Rate            float64 `json:"rate"`
	RateEnd         float64 `json:"rate_end,omitempty"`
}

// SizeClass is one weighted entry of the dataset-size mix.
type SizeClass struct {
	Samples int     `json:"samples"`
	Weight  float64 `json:"weight"`
}

// NoiseClass is one weighted entry of the noise mix: the label-noise rate
// and corruption model applied to catalog datasets assigned this class.
// Kind is "pair" or "symmetric" (empty defaults to pair); Rate 0 means the
// dataset arrives clean.
type NoiseClass struct {
	Rate   float64 `json:"rate"`
	Kind   string  `json:"kind,omitempty"`
	Weight float64 `json:"weight"`
}

// FaultSpec configures deterministic chaos on the detector during replay
// (internal/fault), so load scenarios can measure serving behaviour under
// failure, not just under traffic.
type FaultSpec struct {
	FailRate      float64 `json:"fail_rate,omitempty"`
	PanicRate     float64 `json:"panic_rate,omitempty"`
	SlowRate      float64 `json:"slow_rate,omitempty"`
	SlowLatencyMS float64 `json:"slow_latency_ms,omitempty"`
	CorruptRate   float64 `json:"corrupt_rate,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`
}

// PolicySpec configures the service's resilience policy (lake.Policy) for
// the scenario.
type PolicySpec struct {
	TaskTimeoutSeconds float64 `json:"task_timeout_seconds,omitempty"`
	Retries            int     `json:"retries,omitempty"`
	RetryBaseMS        float64 `json:"retry_base_ms,omitempty"`
	BreakerThreshold   int     `json:"breaker_threshold,omitempty"`
	BreakerCooldownMS  float64 `json:"breaker_cooldown_ms,omitempty"`
	Fallback           bool    `json:"fallback,omitempty"`
	// Admission bounds the service's queue and enables deadline-aware load
	// shedding (lake.AdmissionConfig): QueueDepth 0 keeps the legacy
	// unbounded backpressure.
	QueueDepth     int     `json:"queue_depth,omitempty"`
	MaxQueueWaitMS float64 `json:"max_queue_wait_ms,omitempty"`
}

// Admission converts the spec's admission fields to the service config.
func (p PolicySpec) Admission() lake.AdmissionConfig {
	return lake.AdmissionConfig{
		QueueDepth:   p.QueueDepth,
		MaxQueueWait: time.Duration(p.MaxQueueWaitMS * float64(time.Millisecond)),
	}
}

// BrownoutSpec configures the service's brownout controller
// (lake.BrownoutConfig) for the scenario. Its presence in a spec enables
// brownout; replay tooling may still force it off for an unprotected
// baseline run (loadgen -no-brownout).
type BrownoutSpec struct {
	QueueHigh     int     `json:"queue_high,omitempty"`
	QueueLow      int     `json:"queue_low,omitempty"`
	P95HighMS     float64 `json:"p95_high_ms,omitempty"`
	P95LowMS      float64 `json:"p95_low_ms,omitempty"`
	IntervalMS    float64 `json:"interval_ms,omitempty"`
	EscalateAfter int     `json:"escalate_after,omitempty"`
	RecoverAfter  int     `json:"recover_after,omitempty"`
}

// Config converts the brownout spec to the service config.
func (b BrownoutSpec) Config() lake.BrownoutConfig {
	return lake.BrownoutConfig{
		QueueHigh:     b.QueueHigh,
		QueueLow:      b.QueueLow,
		P95High:       time.Duration(b.P95HighMS * float64(time.Millisecond)),
		P95Low:        time.Duration(b.P95LowMS * float64(time.Millisecond)),
		Interval:      time.Duration(b.IntervalMS * float64(time.Millisecond)),
		EscalateAfter: b.EscalateAfter,
		RecoverAfter:  b.RecoverAfter,
	}
}

// Spec is one declarative load scenario. Everything that shapes the
// workload or the system under test lives here, so a scenario file fully
// determines a run; environment concerns (storage directory, output paths,
// time compression) stay on the loadgen command line.
type Spec struct {
	Name string `json:"name"`
	// Seed drives trace generation and catalog materialization; a fixed
	// seed reproduces the trace bit-for-bit.
	Seed uint64 `json:"seed"`

	// System under test.
	Preset      string  `json:"preset"`                 // emnist | cifar100 | tinyimagenet
	Eta         float64 `json:"eta"`                    // platform-inventory noise rate
	Scale       float64 `json:"scale,omitempty"`        // dataset size factor (0 = 1.0)
	Method      string  `json:"method"`                 // detector under load
	Workers     int     `json:"workers"`                // concurrent service workers
	TaskWorkers int     `json:"task_workers,omitempty"` // data-parallel workers per task (0 = 1)

	// Traffic shape.
	Phases []Phase `json:"phases"`
	// Arrivals selects the inter-arrival model: "poisson" (exponential
	// gaps, the default) or "uniform" (evenly spaced).
	Arrivals string `json:"arrivals,omitempty"`

	// Catalog: the population of distinct datasets requests draw from.
	// Popularity is Zipf-distributed with exponent Skew (0 = uniform):
	// entry j is picked proportionally to 1/(j+1)^skew, so low-numbered
	// entries are hot and the tail is cold.
	Datasets int          `json:"datasets"`
	Skew     float64      `json:"skew,omitempty"`
	Sizes    []SizeClass  `json:"sizes"`
	NoiseMix []NoiseClass `json:"noise_mix"`

	Fault  FaultSpec  `json:"fault,omitempty"`
	Policy PolicySpec `json:"policy,omitempty"`
	// Brownout, when present, installs the degradation-tier controller on
	// the service under test.
	Brownout *BrownoutSpec `json:"brownout,omitempty"`
	SLO      SLO           `json:"slo,omitempty"`
}

// LoadSpec reads and validates one scenario spec file.
func LoadSpec(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return Spec{}, fmt.Errorf("workload: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("workload: %s: %w", path, err)
	}
	return s, nil
}

// Validate rejects specs that cannot generate a sound trace.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s has no phases", s.Name)
	}
	for i, p := range s.Phases {
		if p.DurationSeconds <= 0 {
			return fmt.Errorf("scenario %s phase %d: non-positive duration", s.Name, i)
		}
		if p.Rate < 0 || p.RateEnd < 0 {
			return fmt.Errorf("scenario %s phase %d: negative rate", s.Name, i)
		}
		if p.Rate == 0 && p.RateEnd == 0 {
			return fmt.Errorf("scenario %s phase %d: zero rate (drop the phase instead)", s.Name, i)
		}
	}
	switch s.Arrivals {
	case "", ArrivalsPoisson, ArrivalsUniform:
	default:
		return fmt.Errorf("scenario %s: unknown arrivals model %q", s.Name, s.Arrivals)
	}
	if s.Datasets < 1 {
		return fmt.Errorf("scenario %s: catalog needs at least one dataset", s.Name)
	}
	if s.Skew < 0 {
		return fmt.Errorf("scenario %s: negative skew", s.Name)
	}
	if err := validateWeights(len(s.Sizes), func(i int) float64 { return s.Sizes[i].Weight }); err != nil {
		return fmt.Errorf("scenario %s sizes: %w", s.Name, err)
	}
	for i, c := range s.Sizes {
		if c.Samples < 1 {
			return fmt.Errorf("scenario %s sizes[%d]: non-positive sample count", s.Name, i)
		}
	}
	if err := validateWeights(len(s.NoiseMix), func(i int) float64 { return s.NoiseMix[i].Weight }); err != nil {
		return fmt.Errorf("scenario %s noise_mix: %w", s.Name, err)
	}
	for i, c := range s.NoiseMix {
		if c.Rate < 0 || c.Rate >= 1 {
			return fmt.Errorf("scenario %s noise_mix[%d]: rate %v outside [0, 1)", s.Name, i, c.Rate)
		}
		switch c.Kind {
		case "", NoisePair, NoiseSymmetric:
		default:
			return fmt.Errorf("scenario %s noise_mix[%d]: unknown kind %q", s.Name, i, c.Kind)
		}
	}
	if err := s.Fault.validate(); err != nil {
		return fmt.Errorf("scenario %s fault: %w", s.Name, err)
	}
	if err := s.Policy.validate(); err != nil {
		return fmt.Errorf("scenario %s policy: %w", s.Name, err)
	}
	if s.Brownout != nil {
		if err := s.Brownout.Config().Validate(); err != nil {
			return fmt.Errorf("scenario %s brownout: %w", s.Name, err)
		}
	}
	if err := s.SLO.validate(); err != nil {
		return fmt.Errorf("scenario %s slo: %w", s.Name, err)
	}
	return nil
}

// validate rejects fault rates outside [0, 1] and negative latencies.
func (f FaultSpec) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"fail_rate", f.FailRate}, {"panic_rate", f.PanicRate},
		{"slow_rate", f.SlowRate}, {"corrupt_rate", f.CorruptRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("%s %v outside [0, 1]", r.name, r.v)
		}
	}
	if f.SlowLatencyMS < 0 {
		return fmt.Errorf("negative slow_latency_ms %v", f.SlowLatencyMS)
	}
	return nil
}

// validate rejects resilience-policy settings the service would refuse.
func (p PolicySpec) validate() error {
	if p.TaskTimeoutSeconds < 0 || p.Retries < 0 || p.RetryBaseMS < 0 ||
		p.BreakerThreshold < 0 || p.BreakerCooldownMS < 0 || p.MaxQueueWaitMS < 0 {
		return fmt.Errorf("negative policy field: %+v", p)
	}
	return p.Admission().Validate()
}

// Arrival models.
const (
	ArrivalsPoisson = "poisson"
	ArrivalsUniform = "uniform"
)

// Noise kinds of the catalog mix.
const (
	NoisePair      = "pair"
	NoiseSymmetric = "symmetric"
)

func validateWeights(n int, weight func(int) float64) error {
	if n == 0 {
		return fmt.Errorf("empty mix")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		w := weight(i)
		if w < 0 {
			return fmt.Errorf("negative weight at %d", i)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("weights sum to zero")
	}
	return nil
}

// Duration returns the total scheduled length of the scenario.
func (s Spec) Duration() time.Duration {
	total := 0.0
	for _, p := range s.Phases {
		total += p.DurationSeconds
	}
	return time.Duration(total * float64(time.Second))
}
