package workload

import (
	"fmt"

	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/noise"
)

// catalogSeedSalt decorrelates per-entry materialization RNGs from the
// trace stream.
const catalogSeedSalt = 0xd1b54a32d192ed03

// Materialize builds the catalog datasets a trace references: entry j draws
// its samples (without replacement) from the clean pool and corrupts them
// with its assigned noise class. classes is the label-space size of the pool
// (needed to build transition matrices). The result is deterministic from
// the trace and seed; entries may be submitted repeatedly during replay, so
// detectors must treat request data as read-only (every detector in this
// repository does, and the chaos injector's label scrambler clones first).
func Materialize(t *Trace, pool dataset.Set, classes int) ([]dataset.Set, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("workload: empty catalog pool")
	}
	out := make([]dataset.Set, len(t.Catalog))
	for j, meta := range t.Catalog {
		if meta.Samples > len(pool) {
			return nil, fmt.Errorf("workload: catalog entry %d wants %d samples, pool has %d",
				j, meta.Samples, len(pool))
		}
		rng := mat.NewRNG(t.Seed ^ catalogSeedSalt ^ (uint64(j+1) * 0x9e3779b97f4a7c15))
		perm := rng.Perm(len(pool))
		set := make(dataset.Set, meta.Samples)
		for i := 0; i < meta.Samples; i++ {
			set[i] = pool[perm[i]]
		}
		if meta.NoiseRate > 0 {
			var tm noise.TransitionMatrix
			var err error
			switch meta.NoiseKind {
			case NoisePair:
				tm, err = noise.Pair(classes, meta.NoiseRate)
			case NoiseSymmetric:
				tm, err = noise.Symmetric(classes, meta.NoiseRate)
			default:
				err = fmt.Errorf("workload: catalog entry %d: unknown noise kind %q", j, meta.NoiseKind)
			}
			if err != nil {
				return nil, err
			}
			if _, err := noise.Apply(set, tm, rng); err != nil {
				return nil, fmt.Errorf("workload: catalog entry %d: %w", j, err)
			}
		}
		out[j] = set
	}
	return out, nil
}
