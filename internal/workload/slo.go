package workload

import (
	"fmt"
	"sort"
)

// SLO declares a scenario's service-level objectives. Zero-valued latency
// and throughput fields are unset (no objective); the count limits use
// pointers because zero is the interesting value there ("zero dead-letters
// at steady state", "the breaker never opens").
type SLO struct {
	MaxP50TaskSeconds   float64 `json:"max_p50_task_seconds,omitempty"`
	MaxP95TaskSeconds   float64 `json:"max_p95_task_seconds,omitempty"`
	MaxP99TaskSeconds   float64 `json:"max_p99_task_seconds,omitempty"`
	MaxP99QueuedSeconds float64 `json:"max_p99_queued_seconds,omitempty"`
	MinThroughputRPS    float64 `json:"min_throughput_rps,omitempty"`
	MaxDeadLetters      *int    `json:"max_dead_letters,omitempty"`
	MaxDegraded         *int    `json:"max_degraded,omitempty"`
	MaxBreakerOpens     *int    `json:"max_breaker_opens,omitempty"`
	// MinCompletedRatio bounds lost work: accounted tasks (completed + shed
	// + abandoned) over offered. 1.0 demands every offered request is
	// accounted for. Shed tasks count as accounted — the client got an
	// immediate, honest rejection — while bounding how many may be rejected
	// is MaxShedFraction's job.
	MinCompletedRatio float64 `json:"min_completed_ratio,omitempty"`
	// MaxShedFraction bounds shed tasks over offered. A pointer because 0 is
	// the interesting value ("nothing may be shed at this load").
	MaxShedFraction *float64 `json:"max_shed_fraction,omitempty"`
	// MaxAbandoned bounds tasks admitted but never processed at shutdown.
	MaxAbandoned *int `json:"max_abandoned,omitempty"`
	// MinTierF1 floors the mean detection F1 per brownout tier (keyed by
	// tier name), so a brownout that holds latency by serving garbage still
	// fails the gate. A tier that served no tasks passes its floor — there
	// is no quality evidence to judge, and the shed/latency objectives
	// already police absent work.
	MinTierF1 map[string]float64 `json:"min_tier_f1,omitempty"`
}

// Empty reports whether no objective is declared.
func (s SLO) Empty() bool {
	return s.MaxP50TaskSeconds == 0 && s.MaxP95TaskSeconds == 0 && s.MaxP99TaskSeconds == 0 &&
		s.MaxP99QueuedSeconds == 0 && s.MinThroughputRPS == 0 && s.MinCompletedRatio == 0 &&
		s.MaxDeadLetters == nil && s.MaxDegraded == nil && s.MaxBreakerOpens == nil &&
		s.MaxShedFraction == nil && s.MaxAbandoned == nil && len(s.MinTierF1) == 0
}

// validate rejects objectives that cannot be met or measured.
func (s SLO) validate() error {
	if s.MaxP50TaskSeconds < 0 || s.MaxP95TaskSeconds < 0 || s.MaxP99TaskSeconds < 0 ||
		s.MaxP99QueuedSeconds < 0 || s.MinThroughputRPS < 0 {
		return fmt.Errorf("negative latency or throughput objective: %+v", s)
	}
	if s.MinCompletedRatio < 0 || s.MinCompletedRatio > 1 {
		return fmt.Errorf("min_completed_ratio %v outside [0, 1]", s.MinCompletedRatio)
	}
	if s.MaxShedFraction != nil && (*s.MaxShedFraction < 0 || *s.MaxShedFraction > 1) {
		return fmt.Errorf("max_shed_fraction %v outside [0, 1]", *s.MaxShedFraction)
	}
	for _, limit := range []struct {
		name string
		v    *int
	}{
		{"max_dead_letters", s.MaxDeadLetters}, {"max_degraded", s.MaxDegraded},
		{"max_breaker_opens", s.MaxBreakerOpens}, {"max_abandoned", s.MaxAbandoned},
	} {
		if limit.v != nil && *limit.v < 0 {
			return fmt.Errorf("negative %s %d", limit.name, *limit.v)
		}
	}
	for tier, floor := range s.MinTierF1 {
		if tier == "" {
			return fmt.Errorf("min_tier_f1 has an unnamed tier")
		}
		if floor < 0 || floor > 1 {
			return fmt.Errorf("min_tier_f1[%s] = %v outside [0, 1]", tier, floor)
		}
	}
	return nil
}

// Evaluate checks r against the declared objectives and returns one
// violation string per breached objective (empty = pass). A latency
// objective whose percentile could not be measured (empty histogram) is
// itself a violation: an SLO gate that silently passes on an empty run
// would hide a dead service.
func (s SLO) Evaluate(r *ScenarioResult) []string {
	var v []string
	latency := func(name string, limit, got float64, count uint64) {
		if limit <= 0 {
			return
		}
		switch {
		case count == 0:
			v = append(v, fmt.Sprintf("%s unmeasurable (no observations), limit %.3fs", name, limit))
		case got > limit:
			v = append(v, fmt.Sprintf("%s = %.3fs, above the %.3fs limit", name, got, limit))
		}
	}
	latency("task p50", s.MaxP50TaskSeconds, r.TaskSeconds.P50, r.TaskSeconds.Count)
	latency("task p95", s.MaxP95TaskSeconds, r.TaskSeconds.P95, r.TaskSeconds.Count)
	latency("task p99", s.MaxP99TaskSeconds, r.TaskSeconds.P99, r.TaskSeconds.Count)
	latency("queued p99", s.MaxP99QueuedSeconds, r.QueuedSeconds.P99, r.QueuedSeconds.Count)

	if s.MinThroughputRPS > 0 && r.ThroughputRPS < s.MinThroughputRPS {
		v = append(v, fmt.Sprintf("throughput = %.2f req/s, below the %.2f req/s floor", r.ThroughputRPS, s.MinThroughputRPS))
	}
	count := func(name string, limit *int, got int) {
		if limit != nil && got > *limit {
			v = append(v, fmt.Sprintf("%s = %d, above the limit of %d", name, got, *limit))
		}
	}
	count("dead-lettered tasks", s.MaxDeadLetters, r.Outcomes["dead_letter"])
	count("degraded tasks", s.MaxDegraded, r.Outcomes["degraded"])
	count("breaker opens", s.MaxBreakerOpens, r.BreakerOpens)
	count("abandoned tasks", s.MaxAbandoned, r.Outcomes["abandoned"])
	if s.MinCompletedRatio > 0 {
		ratio := 1.0
		accounted := r.Completed + r.Outcomes["shed"] + r.Outcomes["abandoned"]
		if r.Offered > 0 {
			ratio = float64(accounted) / float64(r.Offered)
		}
		if ratio < s.MinCompletedRatio {
			v = append(v, fmt.Sprintf("accounted ratio = %.3f (%d of %d offered), below the %.3f floor",
				ratio, accounted, r.Offered, s.MinCompletedRatio))
		}
	}
	if s.MaxShedFraction != nil && r.Offered > 0 {
		frac := float64(r.Outcomes["shed"]) / float64(r.Offered)
		if frac > *s.MaxShedFraction {
			v = append(v, fmt.Sprintf("shed fraction = %.3f (%d of %d offered), above the %.3f limit",
				frac, r.Outcomes["shed"], r.Offered, *s.MaxShedFraction))
		}
	}
	for _, tier := range sortedKeys(s.MinTierF1) {
		floor := s.MinTierF1[tier]
		q, ok := r.TierF1[tier]
		if !ok || q.Tasks == 0 {
			continue // tier never served: no quality evidence to judge
		}
		if q.MeanF1 < floor {
			v = append(v, fmt.Sprintf("tier %s mean F1 = %.3f over %d tasks, below the %.3f floor",
				tier, q.MeanF1, q.Tasks, floor))
		}
	}
	return v
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
