package workload

import "fmt"

// SLO declares a scenario's service-level objectives. Zero-valued latency
// and throughput fields are unset (no objective); the count limits use
// pointers because zero is the interesting value there ("zero dead-letters
// at steady state", "the breaker never opens").
type SLO struct {
	MaxP50TaskSeconds   float64 `json:"max_p50_task_seconds,omitempty"`
	MaxP95TaskSeconds   float64 `json:"max_p95_task_seconds,omitempty"`
	MaxP99TaskSeconds   float64 `json:"max_p99_task_seconds,omitempty"`
	MaxP99QueuedSeconds float64 `json:"max_p99_queued_seconds,omitempty"`
	MinThroughputRPS    float64 `json:"min_throughput_rps,omitempty"`
	MaxDeadLetters      *int    `json:"max_dead_letters,omitempty"`
	MaxDegraded         *int    `json:"max_degraded,omitempty"`
	MaxBreakerOpens     *int    `json:"max_breaker_opens,omitempty"`
	// MinCompletedRatio bounds lost work: completed (ok + degraded +
	// dead-lettered) over offered. 1.0 demands every offered request is
	// accounted for.
	MinCompletedRatio float64 `json:"min_completed_ratio,omitempty"`
}

// Empty reports whether no objective is declared.
func (s SLO) Empty() bool {
	return s.MaxP50TaskSeconds == 0 && s.MaxP95TaskSeconds == 0 && s.MaxP99TaskSeconds == 0 &&
		s.MaxP99QueuedSeconds == 0 && s.MinThroughputRPS == 0 && s.MinCompletedRatio == 0 &&
		s.MaxDeadLetters == nil && s.MaxDegraded == nil && s.MaxBreakerOpens == nil
}

// Evaluate checks r against the declared objectives and returns one
// violation string per breached objective (empty = pass). A latency
// objective whose percentile could not be measured (empty histogram) is
// itself a violation: an SLO gate that silently passes on an empty run
// would hide a dead service.
func (s SLO) Evaluate(r *ScenarioResult) []string {
	var v []string
	latency := func(name string, limit, got float64, count uint64) {
		if limit <= 0 {
			return
		}
		switch {
		case count == 0:
			v = append(v, fmt.Sprintf("%s unmeasurable (no observations), limit %.3fs", name, limit))
		case got > limit:
			v = append(v, fmt.Sprintf("%s = %.3fs, above the %.3fs limit", name, got, limit))
		}
	}
	latency("task p50", s.MaxP50TaskSeconds, r.TaskSeconds.P50, r.TaskSeconds.Count)
	latency("task p95", s.MaxP95TaskSeconds, r.TaskSeconds.P95, r.TaskSeconds.Count)
	latency("task p99", s.MaxP99TaskSeconds, r.TaskSeconds.P99, r.TaskSeconds.Count)
	latency("queued p99", s.MaxP99QueuedSeconds, r.QueuedSeconds.P99, r.QueuedSeconds.Count)

	if s.MinThroughputRPS > 0 && r.ThroughputRPS < s.MinThroughputRPS {
		v = append(v, fmt.Sprintf("throughput = %.2f req/s, below the %.2f req/s floor", r.ThroughputRPS, s.MinThroughputRPS))
	}
	count := func(name string, limit *int, got int) {
		if limit != nil && got > *limit {
			v = append(v, fmt.Sprintf("%s = %d, above the limit of %d", name, got, *limit))
		}
	}
	count("dead-lettered tasks", s.MaxDeadLetters, r.Outcomes["dead_letter"])
	count("degraded tasks", s.MaxDegraded, r.Outcomes["degraded"])
	count("breaker opens", s.MaxBreakerOpens, r.BreakerOpens)
	if s.MinCompletedRatio > 0 {
		ratio := 1.0
		if r.Offered > 0 {
			ratio = float64(r.Completed) / float64(r.Offered)
		}
		if ratio < s.MinCompletedRatio {
			v = append(v, fmt.Sprintf("completed ratio = %.3f (%d of %d offered), below the %.3f floor",
				ratio, r.Completed, r.Offered, s.MinCompletedRatio))
		}
	}
	return v
}
