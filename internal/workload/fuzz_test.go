package workload

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecValidate hardens the scenario-spec entry point: whatever bytes a
// user hands loadgen as a scenario file, decode + Validate must either accept
// the spec or return an error — never panic. The validators reach deep into
// the config surface (phases, mixes, fault rates, admission, brownout
// watermarks, SLO objectives), so the fuzzer is pointed at exactly the path
// LoadSpec runs. Seeds are the committed scenario files — realistic, fully
// populated specs the mutator can corrupt field-by-field — plus handcrafted
// near-miss JSON targeting the newest validation surface.
func FuzzSpecValidate(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no scenario seeds found: %v", err)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","phases":[{"duration_seconds":-1}]}`))
	f.Add([]byte(`{"name":"x","fault":{"fail_rate":7e308,"slow_latency_ms":-1}}`))
	f.Add([]byte(`{"name":"x","policy":{"queue_depth":-9,"max_queue_wait_ms":1e308}}`))
	f.Add([]byte(`{"name":"x","brownout":{"queue_high":1,"queue_low":2,"interval_ms":-3}}`))
	f.Add([]byte(`{"name":"x","slo":{"max_shed_fraction":-0.5,"min_tier_f1":{"":2}}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var s Spec
		if err := json.Unmarshal(raw, &s); err != nil {
			return // malformed JSON is the decoder's problem, reported loudly
		}
		// Must not panic; the error (or nil) is the contract.
		err := s.Validate()
		// A spec that validates must also survive the derived conversions the
		// replay path performs before any trace is generated.
		if err == nil {
			if cerr := s.Policy.Admission().Validate(); cerr != nil {
				t.Fatalf("validated spec has unsound admission config: %v", cerr)
			}
			if s.Brownout != nil {
				if cerr := s.Brownout.Config().Validate(); cerr != nil {
					t.Fatalf("validated spec has unsound brownout config: %v", cerr)
				}
			}
			s.Duration()
		}
	})
}
