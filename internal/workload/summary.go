package workload

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"enld/internal/obs"
)

// LatencySummary is one histogram reduced to the numbers the SLO gate and
// the BENCH_load.json artifact carry. Percentiles are estimated from the
// scraped bucket layout the way Prometheus's histogram_quantile does, so
// the artifact states exactly what a production dashboard would.
type LatencySummary struct {
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Mean  float64 `json:"mean_seconds"`
	Count uint64  `json:"count"`
}

// ScenarioResult is one scenario's measured outcome in BENCH_load.json.
type ScenarioResult struct {
	Name        string  `json:"name"`
	Seed        uint64  `json:"seed"`
	Offered     int     `json:"offered"`
	Completed   int     `json:"completed"`
	WallSeconds float64 `json:"wall_seconds"`
	// ThroughputRPS is completed tasks over the replay wall clock, in trace
	// time (speed compression undone).
	ThroughputRPS float64        `json:"throughput_rps"`
	Outcomes      map[string]int `json:"outcomes"`
	Retries       int            `json:"retries"`
	TaskSeconds   LatencySummary `json:"task_seconds"`
	QueuedSeconds LatencySummary `json:"queued_seconds"`
	BreakerOpens  int            `json:"breaker_opens"`
	// Overload-control outcomes: the deepest brownout tier reached, how many
	// times the controller moved, and per-tier detection quality. TierF1 is
	// keyed by tier name; tiers appear only when they served scored tasks.
	BrownoutMaxTier int               `json:"brownout_max_tier,omitempty"`
	TierChanges     int               `json:"tier_changes,omitempty"`
	TierF1          map[string]TierF1 `json:"tier_f1,omitempty"`
	// MaxSendLagSeconds is the generator's worst schedule slip; a large
	// value taints the latency numbers (see PlayOptions.Obs).
	MaxSendLagSeconds float64 `json:"max_send_lag_seconds"`

	SLO        SLO      `json:"slo"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// TierF1 is one brownout tier's detection quality over a run.
type TierF1 struct {
	MeanF1 float64 `json:"mean_f1"`
	Tasks  uint64  `json:"tasks"`
}

// LoadSummary is the BENCH_load.json document.
type LoadSummary struct {
	GoVersion string           `json:"go_version,omitempty"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Scenario returns the named scenario result, or nil.
func (s *LoadSummary) Scenario(name string) *ScenarioResult {
	for i := range s.Scenarios {
		if s.Scenarios[i].Name == name {
			return &s.Scenarios[i]
		}
	}
	return nil
}

// Summarize reduces a replay to its ScenarioResult by scraping the service's
// metrics out of reg — the same registry svc.SetObs was given — rather than
// reading the in-process reports: the artifact then measures exactly what
// the /metrics endpoint exposes, and the one scrape path also serves live
// HTTP endpoints (SummarizeScrape). The SLO verdict is filled in.
func Summarize(spec Spec, res *PlayResult, reg *obs.Registry) (*ScenarioResult, error) {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	parsed, err := obs.ParseText(&buf)
	if err != nil {
		return nil, err
	}
	out, err := summarizeParsed(spec.Name, parsed)
	if err != nil {
		return nil, err
	}
	out.Seed = spec.Seed
	out.Offered = res.Offered
	out.WallSeconds = res.WallSeconds
	out.MaxSendLagSeconds = res.MaxSendLagSeconds
	if res.WallSeconds > 0 {
		out.ThroughputRPS = float64(out.Completed) / res.WallSeconds
	}
	finishSLO(out, spec.SLO)
	return out, nil
}

// SummarizeScrape builds a ScenarioResult from a live /metrics endpoint —
// the over-HTTP mode: point it at a running lakesim and evaluate the same
// SLOs against whatever the service has served so far. Offered and
// throughput come from the exposition (tasks completed over wallSeconds, if
// positive), not from a replay.
func SummarizeScrape(name, url string, slo SLO, wallSeconds float64) (*ScenarioResult, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: scraping %s: %s", url, resp.Status)
	}
	return SummarizeReader(name, resp.Body, slo, wallSeconds)
}

// SummarizeReader is SummarizeScrape over an already-open exposition stream.
func SummarizeReader(name string, r io.Reader, slo SLO, wallSeconds float64) (*ScenarioResult, error) {
	parsed, err := obs.ParseText(r)
	if err != nil {
		return nil, err
	}
	out, err := summarizeParsed(name, parsed)
	if err != nil {
		return nil, err
	}
	out.Offered = out.Completed
	out.WallSeconds = wallSeconds
	if wallSeconds > 0 {
		out.ThroughputRPS = float64(out.Completed) / wallSeconds
	}
	finishSLO(out, slo)
	return out, nil
}

// summarizeParsed extracts the lake-service families from a parsed
// exposition. Absent families are an error, not zeros: a load run whose
// service exported nothing measured nothing.
func summarizeParsed(name string, parsed obs.Parsed) (*ScenarioResult, error) {
	out := &ScenarioResult{Name: name, Outcomes: map[string]int{}}
	for _, outcome := range []string{"ok", "degraded", "dead_letter"} {
		v, ok := parsed.Counter("enld_lake_tasks_total", map[string]string{"outcome": outcome})
		if !ok {
			return nil, fmt.Errorf("workload: scrape is missing enld_lake_tasks_total{outcome=%q} — is the service observed?", outcome)
		}
		out.Outcomes[outcome] = int(v)
		out.Completed += int(v)
	}
	// Overload outcome classes: accounted work that is not completed work.
	// Optional in the exposition so pre-overload-control scrapes still parse.
	for _, outcome := range []string{"shed", "abandoned"} {
		if v, ok := parsed.Counter("enld_lake_tasks_total", map[string]string{"outcome": outcome}); ok {
			out.Outcomes[outcome] = int(v)
		}
	}
	if v, ok := parsed.Gauge("enld_lake_brownout_max_tier", nil); ok {
		out.BrownoutMaxTier = int(v)
	}
	for _, direction := range []string{"down", "up"} {
		if v, ok := parsed.Counter("enld_lake_brownout_transitions_total",
			map[string]string{"direction": direction}); ok {
			out.TierChanges += int(v)
		}
	}
	// Per-tier detection quality: every {tier=...} series of the F1 family.
	if fam := parsed["enld_lake_detection_f1"]; fam != nil {
		for _, s := range fam.Series {
			tier := s.Labels["tier"]
			if tier == "" || s.Count == 0 {
				continue
			}
			if out.TierF1 == nil {
				out.TierF1 = map[string]TierF1{}
			}
			out.TierF1[tier] = TierF1{MeanF1: finite(s.Sum / float64(s.Count)), Tasks: s.Count}
		}
	}
	if v, ok := parsed.Counter("enld_lake_retries_total", nil); ok {
		out.Retries = int(v)
	}
	var err error
	if out.TaskSeconds, err = latencySummary(parsed, "enld_lake_task_seconds"); err != nil {
		return nil, err
	}
	if out.QueuedSeconds, err = latencySummary(parsed, "enld_lake_queued_seconds"); err != nil {
		return nil, err
	}
	// The breaker families only exist when a breaker is configured
	// (lake.ObserveBreaker); absent means zero opens by construction.
	if v, ok := parsed.Counter("enld_lake_breaker_transitions_total",
		map[string]string{"from": "closed", "to": "open"}); ok {
		out.BreakerOpens = int(v)
	}
	if v, ok := parsed.Counter("enld_lake_breaker_transitions_total",
		map[string]string{"from": "half-open", "to": "open"}); ok {
		out.BreakerOpens += int(v)
	}
	return out, nil
}

func latencySummary(parsed obs.Parsed, family string) (LatencySummary, error) {
	s, ok := parsed.Histogram(family, nil)
	if !ok {
		return LatencySummary{}, fmt.Errorf("workload: scrape is missing histogram %s — is the service observed?", family)
	}
	out := LatencySummary{Count: s.Count}
	if s.Count > 0 {
		// finite() guards JSON encodability: a quantile can only be NaN on
		// an empty histogram, which Count == 0 already marks — the SLO
		// evaluator treats Count == 0 as unmeasurable, never as fast.
		out.P50 = finite(s.Quantile(0.50))
		out.P95 = finite(s.Quantile(0.95))
		out.P99 = finite(s.Quantile(0.99))
		out.Mean = finite(s.Sum / float64(s.Count))
	}
	return out, nil
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// finishSLO stamps the verdict.
func finishSLO(r *ScenarioResult, slo SLO) {
	r.SLO = slo
	r.Violations = slo.Evaluate(r)
	r.Pass = len(r.Violations) == 0
}
