package workload

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"enld/internal/obs"
)

// LatencySummary is one histogram reduced to the numbers the SLO gate and
// the BENCH_load.json artifact carry. Percentiles are estimated from the
// scraped bucket layout the way Prometheus's histogram_quantile does, so
// the artifact states exactly what a production dashboard would.
type LatencySummary struct {
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Mean  float64 `json:"mean_seconds"`
	Count uint64  `json:"count"`
}

// ScenarioResult is one scenario's measured outcome in BENCH_load.json.
type ScenarioResult struct {
	Name        string  `json:"name"`
	Seed        uint64  `json:"seed"`
	Offered     int     `json:"offered"`
	Completed   int     `json:"completed"`
	WallSeconds float64 `json:"wall_seconds"`
	// ThroughputRPS is completed tasks over the replay wall clock, in trace
	// time (speed compression undone).
	ThroughputRPS float64        `json:"throughput_rps"`
	Outcomes      map[string]int `json:"outcomes"`
	Retries       int            `json:"retries"`
	TaskSeconds   LatencySummary `json:"task_seconds"`
	QueuedSeconds LatencySummary `json:"queued_seconds"`
	BreakerOpens  int            `json:"breaker_opens"`
	// Overload-control outcomes: the deepest brownout tier reached, how many
	// times the controller moved, and per-tier detection quality. TierF1 is
	// keyed by tier name; tiers appear only when they served scored tasks.
	BrownoutMaxTier int               `json:"brownout_max_tier,omitempty"`
	TierChanges     int               `json:"tier_changes,omitempty"`
	TierF1          map[string]TierF1 `json:"tier_f1,omitempty"`
	// MaxSendLagSeconds is the generator's worst schedule slip; a large
	// value taints the latency numbers (see PlayOptions.Obs).
	MaxSendLagSeconds float64 `json:"max_send_lag_seconds"`

	SLO        SLO      `json:"slo"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// TierF1 is one brownout tier's detection quality over a run.
type TierF1 struct {
	MeanF1 float64 `json:"mean_f1"`
	Tasks  uint64  `json:"tasks"`
}

// LoadSummary is the BENCH_load.json document.
type LoadSummary struct {
	GoVersion string           `json:"go_version,omitempty"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Scenario returns the named scenario result, or nil.
func (s *LoadSummary) Scenario(name string) *ScenarioResult {
	for i := range s.Scenarios {
		if s.Scenarios[i].Name == name {
			return &s.Scenarios[i]
		}
	}
	return nil
}

// Summarize reduces a replay to its ScenarioResult by scraping the service's
// metrics out of reg — the same registry svc.SetObs was given — rather than
// reading the in-process reports: the artifact then measures exactly what
// the /metrics endpoint exposes, and the one scrape path also serves live
// HTTP endpoints (SummarizeScrape). The SLO verdict is filled in.
func Summarize(spec Spec, res *PlayResult, reg *obs.Registry) (*ScenarioResult, error) {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return SummarizeExposition(spec, res, &buf)
}

// SummarizeExposition is Summarize over an already-rendered exposition —
// the cluster path: a coordinator's merged scatter/gather /metrics view
// flows through the identical reduction a single service's registry does,
// so one-node and N-node runs are summarized by the same code.
func SummarizeExposition(spec Spec, res *PlayResult, r io.Reader) (*ScenarioResult, error) {
	parsed, err := obs.ParseText(r)
	if err != nil {
		return nil, err
	}
	out, err := summarizeParsed(spec.Name, parsed)
	if err != nil {
		return nil, err
	}
	out.Seed = spec.Seed
	out.Offered = res.Offered
	out.WallSeconds = res.WallSeconds
	out.MaxSendLagSeconds = res.MaxSendLagSeconds
	if res.WallSeconds > 0 {
		out.ThroughputRPS = float64(out.Completed) / res.WallSeconds
	}
	finishSLO(out, spec.SLO)
	return out, nil
}

// SummarizeScrape builds a ScenarioResult from live /metrics endpoints —
// the over-HTTP mode: point it at a running lakesim (or several) and
// evaluate the same SLOs against whatever the services have served so far.
// url is a comma-separated endpoint list; multiple endpoints are scraped
// individually and merged with the cluster scatter/gather rules
// (obs.MergeExpositions) before the one shared reduction runs, so a
// multi-node run summarizes identically to an in-process one. Offered and
// throughput come from the exposition (tasks completed over wallSeconds, if
// positive), not from a replay.
func SummarizeScrape(name, url string, slo SLO, wallSeconds float64) (*ScenarioResult, error) {
	urls := strings.Split(url, ",")
	client := &http.Client{Timeout: 10 * time.Second}
	parts := make([]obs.ShardExposition, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			return nil, fmt.Errorf("workload: empty scrape URL in list %q", url)
		}
		resp, err := client.Get(u)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("workload: scraping %s: %s", u, resp.Status)
		}
		parsed, err := obs.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("workload: scraping %s: %w", u, err)
		}
		shard := u
		if len(urls) == 1 {
			// A single endpoint keeps its gauges unlabelled — byte-for-byte
			// the pre-cluster scrape behavior.
			shard = ""
		}
		parts = append(parts, obs.ShardExposition{Shard: shard, Parsed: parsed})
	}
	merged, err := obs.MergeExpositions(parts)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := obs.WriteParsed(&buf, merged); err != nil {
		return nil, err
	}
	return SummarizeReader(name, &buf, slo, wallSeconds)
}

// SummarizeReader is SummarizeScrape over an already-open exposition stream.
func SummarizeReader(name string, r io.Reader, slo SLO, wallSeconds float64) (*ScenarioResult, error) {
	parsed, err := obs.ParseText(r)
	if err != nil {
		return nil, err
	}
	out, err := summarizeParsed(name, parsed)
	if err != nil {
		return nil, err
	}
	out.Offered = out.Completed
	out.WallSeconds = wallSeconds
	if wallSeconds > 0 {
		out.ThroughputRPS = float64(out.Completed) / wallSeconds
	}
	finishSLO(out, slo)
	return out, nil
}

// summarizeParsed extracts the lake-service families from a parsed
// exposition. Absent families are an error, not zeros: a load run whose
// service exported nothing measured nothing.
func summarizeParsed(name string, parsed obs.Parsed) (*ScenarioResult, error) {
	out := &ScenarioResult{Name: name, Outcomes: map[string]int{}}
	for _, outcome := range []string{"ok", "degraded", "dead_letter"} {
		v, ok := parsed.Counter("enld_lake_tasks_total", map[string]string{"outcome": outcome})
		if !ok {
			return nil, fmt.Errorf("workload: scrape is missing enld_lake_tasks_total{outcome=%q} — is the service observed?", outcome)
		}
		out.Outcomes[outcome] = int(v)
		out.Completed += int(v)
	}
	// Overload outcome classes: accounted work that is not completed work.
	// Optional in the exposition so pre-overload-control scrapes still parse.
	for _, outcome := range []string{"shed", "abandoned"} {
		if v, ok := parsed.Counter("enld_lake_tasks_total", map[string]string{"outcome": outcome}); ok {
			out.Outcomes[outcome] = int(v)
		}
	}
	// In a merged cluster exposition this gauge appears once per shard
	// (labelled shard="k"); the cluster-level deepest tier is the max.
	if fam := parsed["enld_lake_brownout_max_tier"]; fam != nil {
		for _, series := range fam.Series {
			if int(series.Value) > out.BrownoutMaxTier {
				out.BrownoutMaxTier = int(series.Value)
			}
		}
	}
	for _, direction := range []string{"down", "up"} {
		if v, ok := parsed.Counter("enld_lake_brownout_transitions_total",
			map[string]string{"direction": direction}); ok {
			out.TierChanges += int(v)
		}
	}
	// Per-tier detection quality: every {tier=...} series of the F1 family.
	if fam := parsed["enld_lake_detection_f1"]; fam != nil {
		for _, s := range fam.Series {
			tier := s.Labels["tier"]
			if tier == "" || s.Count == 0 {
				continue
			}
			if out.TierF1 == nil {
				out.TierF1 = map[string]TierF1{}
			}
			out.TierF1[tier] = TierF1{MeanF1: finite(s.Sum / float64(s.Count)), Tasks: s.Count}
		}
	}
	if v, ok := parsed.Counter("enld_lake_retries_total", nil); ok {
		out.Retries = int(v)
	}
	var err error
	if out.TaskSeconds, err = latencySummary(parsed, "enld_lake_task_seconds"); err != nil {
		return nil, err
	}
	if out.QueuedSeconds, err = latencySummary(parsed, "enld_lake_queued_seconds"); err != nil {
		return nil, err
	}
	// The breaker families only exist when a breaker is configured
	// (lake.ObserveBreaker); absent means zero opens by construction.
	if v, ok := parsed.Counter("enld_lake_breaker_transitions_total",
		map[string]string{"from": "closed", "to": "open"}); ok {
		out.BreakerOpens = int(v)
	}
	if v, ok := parsed.Counter("enld_lake_breaker_transitions_total",
		map[string]string{"from": "half-open", "to": "open"}); ok {
		out.BreakerOpens += int(v)
	}
	return out, nil
}

func latencySummary(parsed obs.Parsed, family string) (LatencySummary, error) {
	s, ok := parsed.Histogram(family, nil)
	if !ok {
		return LatencySummary{}, fmt.Errorf("workload: scrape is missing histogram %s — is the service observed?", family)
	}
	out := LatencySummary{Count: s.Count}
	if s.Count > 0 {
		// finite() guards JSON encodability: a quantile can only be NaN on
		// an empty histogram, which Count == 0 already marks — the SLO
		// evaluator treats Count == 0 as unmeasurable, never as fast.
		out.P50 = finite(s.Quantile(0.50))
		out.P95 = finite(s.Quantile(0.95))
		out.P99 = finite(s.Quantile(0.99))
		out.Mean = finite(s.Sum / float64(s.Count))
	}
	return out, nil
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// finishSLO stamps the verdict.
func finishSLO(r *ScenarioResult, slo SLO) {
	r.SLO = slo
	r.Violations = slo.Evaluate(r)
	r.Pass = len(r.Violations) == 0
}
