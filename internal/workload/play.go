package workload

import (
	"context"
	"fmt"
	"time"

	"enld/internal/dataset"
	"enld/internal/lake"
	"enld/internal/obs"
)

// PlayOptions tunes replay without changing what is replayed.
type PlayOptions struct {
	// Speed compresses the schedule: 2 submits everything twice as fast as
	// the trace prescribes. 0 means 1 (real time).
	Speed float64
	// Obs, when set, receives the generator's own metrics:
	// enld_load_offered_total counts submitted requests and
	// enld_load_send_lag_seconds records how far behind schedule each
	// submission left the generator — sustained lag means the service is
	// backpressuring the feed (or the generator host is saturated), and the
	// trailing latency percentiles undercount true client-visible delay.
	Obs *obs.Registry
}

// PlayResult is what one replay measured on the generator side. Latency
// percentiles deliberately do not live here: they are scraped from the
// service's own obs histograms (Summarize), the same way a production
// monitor would read them.
type PlayResult struct {
	Reports []lake.Report
	// Offered is how many events were actually submitted (a cancelled
	// context stops the schedule early).
	Offered int
	// WallSeconds is the wall-clock span from first submission to Run
	// returning, in trace time (lag included, speed compression undone) —
	// the denominator for offered/served throughput.
	WallSeconds float64
	// MaxSendLagSeconds is the worst schedule slip observed while
	// submitting, in trace time.
	MaxSendLagSeconds float64
}

// Submitter consumes a request stream and returns exactly one report per
// accepted request, sorted by task ID. lake.Service and the sharded
// cluster.Coordinator both satisfy it, which is what lets one load harness
// drive a single service and a whole cluster identically.
type Submitter interface {
	Run(ctx context.Context, requests <-chan lake.Request) []lake.Report
}

// Play replays the trace against svc: each event submits catalog[entry] at
// its scheduled offset, svc.Run consumes the stream with its configured
// worker count, and the reports come back ordered by task ID. The service
// must not have been started; Play owns its Run lifecycle. Cancelling ctx
// stops submission and drains in-flight work.
func Play(ctx context.Context, svc Submitter, trace *Trace, catalog []dataset.Set, opts PlayOptions) (*PlayResult, error) {
	if svc == nil {
		return nil, fmt.Errorf("workload: nil service")
	}
	speed := opts.Speed
	if speed == 0 {
		speed = 1
	}
	if speed < 0 {
		return nil, fmt.Errorf("workload: negative replay speed %v", speed)
	}
	for _, e := range trace.Events {
		if e.Entry < 0 || e.Entry >= len(catalog) {
			return nil, fmt.Errorf("workload: event %d references catalog entry %d of %d", e.Task, e.Entry, len(catalog))
		}
	}

	var offered *obs.Counter
	var sendLag *obs.Histogram
	if opts.Obs != nil {
		offered = opts.Obs.Counter("enld_load_offered_total",
			"Requests the load generator submitted to the service.")
		sendLag = opts.Obs.Histogram("enld_load_send_lag_seconds",
			"How far behind its scheduled offset each load-generator submission ran (trace time). Sustained lag means the service is backpressuring the feed.",
			obs.DefBuckets)
	}

	requests := make(chan lake.Request)
	done := make(chan []lake.Report, 1)
	go func() { done <- svc.Run(ctx, requests) }()

	res := &PlayResult{}
	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

submit:
	for _, e := range trace.Events {
		due := start.Add(time.Duration(float64(e.At) / speed))
		if wait := time.Until(due); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break submit
			}
		}
		lag := time.Since(due).Seconds() * speed
		if lag < 0 {
			lag = 0
		}
		if lag > res.MaxSendLagSeconds {
			res.MaxSendLagSeconds = lag
		}
		select {
		case requests <- lake.Request{TaskID: e.Task, Data: catalog[e.Entry]}:
			offered.Inc()
			sendLag.Observe(lag)
			res.Offered++
		case <-ctx.Done():
			break submit
		}
	}
	close(requests)
	res.Reports = <-done
	res.WallSeconds = time.Since(start).Seconds() * speed
	return res, nil
}
