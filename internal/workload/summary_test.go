package workload

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"enld/internal/obs"
)

// TestLoadSpecFile: LoadSpec round-trips a spec written to disk and rejects
// missing files, malformed JSON, and well-formed JSON that fails validation.
func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, raw []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	raw, err := json.Marshal(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(write("good.json", raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "pinned" || len(got.Phases) != 3 || got.Datasets != 8 {
		t.Fatalf("spec did not round-trip: %+v", got)
	}

	if _, err := LoadSpec(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadSpec(write("broken.json", []byte("{not json"))); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	invalid := testSpec()
	invalid.Phases = nil
	raw, _ = json.Marshal(invalid)
	if _, err := LoadSpec(write("invalid.json", raw)); err == nil {
		t.Fatal("spec with no phases accepted")
	}
}

// TestLoadSummaryScenario: name lookup returns a pointer into the slice (so
// gate code can annotate in place) and nil for unknown names.
func TestLoadSummaryScenario(t *testing.T) {
	sum := LoadSummary{Scenarios: []ScenarioResult{{Name: "a"}, {Name: "b"}}}
	got := sum.Scenario("b")
	if got == nil || got != &sum.Scenarios[1] {
		t.Fatalf("Scenario(b) = %p, want &Scenarios[1] %p", got, &sum.Scenarios[1])
	}
	if sum.Scenario("c") != nil {
		t.Fatal("unknown scenario did not return nil")
	}
}

// lakeExposition builds a registry carrying the exact metric families the
// lake service exports, so SummarizeReader is tested against a real
// WritePrometheus byte stream rather than hand-typed text.
func lakeExposition(t *testing.T) *bytes.Buffer {
	t.Helper()
	reg := obs.NewRegistry()
	outcome := func(v string, n uint64) {
		reg.Counter("enld_lake_tasks_total", "h", obs.Label{Key: "outcome", Value: v}).Add(n)
	}
	outcome("ok", 40)
	outcome("degraded", 3)
	outcome("dead_letter", 1)
	outcome("shed", 6)
	outcome("abandoned", 2)
	reg.Counter("enld_lake_retries_total", "h").Add(5)
	buckets := []float64{0.01, 0.1, 1, 10}
	for i := 0; i < 44; i++ {
		reg.Histogram("enld_lake_task_seconds", "h", buckets).Observe(0.05)
		reg.Histogram("enld_lake_queued_seconds", "h", buckets).Observe(0.005)
	}
	reg.Gauge("enld_lake_brownout_max_tier", "h").Set(2)
	reg.Counter("enld_lake_brownout_transitions_total", "h",
		obs.Label{Key: "direction", Value: "down"}).Add(2)
	reg.Counter("enld_lake_brownout_transitions_total", "h",
		obs.Label{Key: "direction", Value: "up"}).Add(1)
	f1 := func(tier string, v float64, n int) {
		h := reg.Histogram("enld_lake_detection_f1", "h",
			[]float64{0.5, 0.9, 1}, obs.Label{Key: "tier", Value: tier})
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}
	f1("full", 0.9, 30)
	f1("fallback", 0.5, 10)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestSummarizeReader: the scrape path reduces an exposition stream to a
// ScenarioResult — outcome taxonomy, brownout tier accounting, per-tier F1,
// latency percentiles, throughput, and the SLO verdict.
func TestSummarizeReader(t *testing.T) {
	slo := SLO{
		MaxP99TaskSeconds: 1,
		MaxShedFraction:   floatp(0.5),
	}
	sum, err := SummarizeReader("scraped", lakeExposition(t), slo, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Name != "scraped" || sum.Completed != 44 {
		t.Fatalf("name=%q completed=%d, want scraped/44", sum.Name, sum.Completed)
	}
	want := map[string]int{"ok": 40, "degraded": 3, "dead_letter": 1, "shed": 6, "abandoned": 2}
	for k, v := range want {
		if sum.Outcomes[k] != v {
			t.Fatalf("outcome %s = %d, want %d (all: %v)", k, sum.Outcomes[k], v, sum.Outcomes)
		}
	}
	if sum.Retries != 5 {
		t.Fatalf("retries = %d, want 5", sum.Retries)
	}
	if sum.BrownoutMaxTier != 2 || sum.TierChanges != 3 {
		t.Fatalf("brownout max=%d changes=%d, want 2/3", sum.BrownoutMaxTier, sum.TierChanges)
	}
	if got := sum.TierF1["full"]; got.Tasks != 30 || got.MeanF1 < 0.89 || got.MeanF1 > 0.91 {
		t.Fatalf("tier full F1 = %+v, want ~0.9 over 30 tasks", got)
	}
	if got := sum.TierF1["fallback"]; got.Tasks != 10 {
		t.Fatalf("tier fallback F1 = %+v, want 10 tasks", got)
	}
	if sum.TaskSeconds.Count != 44 || sum.TaskSeconds.P99 <= 0 {
		t.Fatalf("task latency summary: %+v", sum.TaskSeconds)
	}
	if sum.ThroughputRPS != 4.4 {
		t.Fatalf("throughput = %v, want 44/10s = 4.4", sum.ThroughputRPS)
	}
	if !sum.Pass || len(sum.Violations) != 0 {
		t.Fatalf("SLO verdict: pass=%v violations=%v", sum.Pass, sum.Violations)
	}

	// A shed fraction over the floor flips the verdict from the same stream.
	tight := SLO{MaxShedFraction: floatp(0.05)}
	sum, err = SummarizeReader("scraped", lakeExposition(t), tight, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pass || len(sum.Violations) == 0 {
		t.Fatalf("shed fraction 6/52 passed a 0.05 floor: %+v", sum.Violations)
	}

	// An exposition without the lake families is an error, not zeros.
	empty := obs.NewRegistry()
	empty.Counter("unrelated_total", "h").Add(1)
	var buf bytes.Buffer
	if err := empty.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := SummarizeReader("empty", &buf, SLO{}, 1); err == nil {
		t.Fatal("exposition without lake families accepted")
	}
}
