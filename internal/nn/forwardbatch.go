package nn

import (
	"fmt"

	"enld/internal/mat"
	"enld/internal/parallel"
)

// BatchScratch holds the activation, pre-activation and delta matrices of a
// batched forward/backward pass: one row per sample, one matrix per layer.
// The zero value is ready to use; buffers grow to the largest batch seen and
// are reused afterwards, so steady-state batched passes allocate nothing.
//
// A BatchScratch belongs to one goroutine at a time *between* passes; during
// a single pooled pass the forward/backward methods themselves fan disjoint
// row ranges of the scratch out over workers, which is safe because every
// row of every matrix is written by exactly one chunk. Concurrent batched
// passes against the same Network are safe with one scratch per worker: the
// forward/backward methods only read the network's parameters.
type BatchScratch struct {
	sizes   []int
	capRows int

	// Backing storage at capRows rows; the matrices below are views of the
	// current batch size into it.
	actsBack, preBack, deltasBack [][]float64

	acts   []mat.Matrix // acts[0] is the packed input batch
	pre    []mat.Matrix
	deltas []mat.Matrix
	panels []mat.Matrix // per-layer packed Wᵀ, used when none are supplied
	rows   int
}

// Rows returns the batch size of the most recent pass.
func (s *BatchScratch) Rows() int { return s.rows }

// Logits returns the output-layer pre-activation matrix of the most recent
// pass: row r holds the logits of sample r. The view stays valid until the
// next pass through this scratch.
func (s *BatchScratch) Logits() *mat.Matrix { return &s.pre[len(s.pre)-1] }

// Features returns the feature matrix M̂(x,θ) of the most recent pass: row r
// holds the post-ReLU last-hidden-layer activations of sample r.
func (s *BatchScratch) Features() *mat.Matrix { return &s.acts[len(s.acts)-2] }

// ensure sizes the scratch for a rows-sized batch of network n, growing the
// backing storage only when the architecture changed or rows exceeds every
// previous batch.
func (s *BatchScratch) ensure(n *Network, rows int) {
	L := len(n.sizes)
	same := len(s.sizes) == L
	if same {
		for i, v := range n.sizes {
			if s.sizes[i] != v {
				same = false
				break
			}
		}
	}
	if !same {
		s.sizes = append(s.sizes[:0], n.sizes...)
		s.capRows = 0
		s.actsBack = make([][]float64, L)
		s.preBack = make([][]float64, L-1)
		s.deltasBack = make([][]float64, L-1)
		s.acts = make([]mat.Matrix, L)
		s.pre = make([]mat.Matrix, L-1)
		s.deltas = make([]mat.Matrix, L-1)
		s.panels = nil
	}
	if rows > s.capRows {
		for i, size := range s.sizes {
			s.actsBack[i] = make([]float64, rows*size)
			if i > 0 {
				s.preBack[i-1] = make([]float64, rows*size)
				s.deltasBack[i-1] = make([]float64, rows*size)
			}
		}
		s.capRows = rows
	}
	for i, size := range s.sizes {
		s.acts[i] = mat.Matrix{Rows: rows, Cols: size, Data: s.actsBack[i][:rows*size]}
		if i > 0 {
			s.pre[i-1] = mat.Matrix{Rows: rows, Cols: size, Data: s.preBack[i-1][:rows*size]}
			s.deltas[i-1] = mat.Matrix{Rows: rows, Cols: size, Data: s.deltasBack[i-1][:rows*size]}
		}
	}
	s.rows = rows
}

// packPanels packs Wᵀ for every layer into panels (growing the slice as
// needed, reusing the panel backing arrays). The panels are read-only during
// forward passes, so one packed set can be shared across any number of
// workers and batch chunks while the weights stay fixed.
func (n *Network) packPanels(panels *[]mat.Matrix) {
	for len(*panels) < len(n.Weights) {
		*panels = append(*panels, mat.Matrix{})
	}
	for l, w := range n.Weights {
		mat.PackNT(&(*panels)[l], w)
	}
}

// fwdRowChunk is the row granularity of the batched forward/backward
// fan-out: coarse enough that one chunk amortizes its claim, fine enough
// that a 32-sample training batch still splits four ways.
const fwdRowChunk = 8

// rowFan fans the row range [0, rows) out over pool in fixed fwdRowChunk
// pieces, or runs it in one sequential call for nil pools and batches of at
// most one chunk. The chunk partition depends only on rows, and callers
// write disjoint rows, so results never depend on the execution strategy.
func rowFan(pool *parallel.Pool, rows int, fn func(lo, hi int)) {
	if pool == nil || rows <= fwdRowChunk {
		fn(0, rows)
		return
	}
	pool.ForEachChunk(rows, fwdRowChunk, func(_, lo, hi int) { fn(lo, hi) })
}

// ForwardBatch runs the network on every input of xs in one pass: the inputs
// are packed row-major into a batch matrix, each weight matrix is packed
// once into a Wᵀ panel, and each layer is one row-blocked GEMM
// (Y += X·(Wᵀpanel)) followed by a batched bias add and ReLU. Results are
// bit-identical to per-sample forward calls — the GEMM kernels accumulate
// each output element with the same sequential k-loop MulVec uses (see
// internal/mat and DESIGN.md §4) — while loading each weight matrix once per
// batch instead of once per sample.
//
// The outputs stay in s: s.Logits() and s.Features() view the last pass.
func (n *Network) ForwardBatch(s *BatchScratch, xs [][]float64) {
	n.forwardBatch(s, xs, nil, nil)
}

// forwardBatch is ForwardBatch with two sharing knobs: panels, when non-nil,
// is a prepacked Wᵀ panel set (one per layer, from packPanels) shared
// read-only across calls; pool, when non-nil, splits each layer's output
// rows across workers. Row splits cannot change any output element — each
// row's accumulation is a self-contained sequential k-loop — so every
// combination of panels/pool is bit-identical to the plain sequential pass.
func (n *Network) forwardBatch(s *BatchScratch, xs [][]float64, panels []mat.Matrix, pool *parallel.Pool) {
	s.ensure(n, len(xs))
	if len(xs) == 0 {
		return
	}
	in := &s.acts[0]
	for r, x := range xs {
		if len(x) != n.sizes[0] {
			panic(fmt.Sprintf("nn: batch input length %d, want %d", len(x), n.sizes[0]))
		}
		copy(in.Row(r), x)
	}
	if panels == nil {
		n.packPanels(&s.panels)
		panels = s.panels
	}
	last := len(n.Weights) - 1
	rows := len(xs)
	for l := range n.Weights {
		bt := &panels[l]
		out := &s.pre[l]
		src := &s.acts[l]
		dst := &s.acts[l+1]
		bias := n.Biases[l]
		rowFan(pool, rows, func(lo, hi int) {
			zeroRows(out, lo, hi)
			mat.GemmRows(out, src, bt, lo, hi)
			for r := lo; r < hi; r++ {
				mat.Axpy(1, bias, out.Row(r))
			}
			if l < last {
				reluRows(dst, out, lo, hi)
			} else {
				copyRows(dst, out, lo, hi)
			}
		})
	}
}

// BackwardBatch accumulates into g the cross-entropy gradient of the whole
// batch (xs[r], targets[r]) and returns the summed loss. It is the batched
// counterpart of per-sample Backward calls in row order, bit-identical to
// them: the weight gradient is one GemmTN (gW += deltaᵀ·acts) whose
// sequential batch-row loop reproduces the per-sample AddOuter order, the
// bias gradient sums delta columns in row order, and the delta
// back-propagation is one row-blocked GEMM (dPrev = delta·W) matching
// MulVecT's accumulation order.
func (n *Network) BackwardBatch(s *BatchScratch, g *Grads, xs, targets [][]float64) float64 {
	if len(xs) == 0 {
		if len(targets) != 0 {
			panic("nn: BackwardBatch xs/targets length mismatch")
		}
		n.forwardBatch(s, xs, nil, nil)
		return 0
	}
	var loss [1]float64
	n.backwardBatchChunked(s, []*Grads{g}, loss[:], xs, targets, len(xs), nil, nil, false)
	return loss[0]
}

// backwardBatchChunked runs one batch-wide forward pass and computes the
// gradients of the fixed chunk partition of [0, len(xs)): chunk c covers
// rows [c·chunk, min((c+1)·chunk, len(xs))), accumulates its gradient into
// chunkGrads[c] (zeroed here first when zeroGrads is set) and its summed
// loss into chunkLoss[c]. It is the trainer's gradient engine: the caller
// reduces the per-chunk gradients and losses in chunk order.
//
// Bit-identity with the sequential per-chunk BackwardBatch path (and hence,
// transitively, with per-sample Backward calls):
//
//   - the forward pass is row-independent, so computing the whole batch at
//     once instead of chunk by chunk changes no activation bit;
//   - each output delta row is softmax(logits) − target, computed per row
//     (the softmax is written directly into the delta row — element-for-
//     element the same values the old per-row probs buffer produced);
//   - each chunk's weight gradient is a GemmTN over *row views* of the
//     batch-wide delta/activation matrices covering exactly the chunk's
//     rows, which walks the same rows in the same order as a GemmTN over a
//     chunk-sized packed copy;
//   - each chunk's loss sums its rows in increasing row order;
//   - the delta back-propagation and ReLU gating are row-independent.
//
// Every parallel split is over disjoint rows or distinct chunk accumulators
// and every chunk partition depends only on len(xs) and chunk, so results
// are bit-identical at any worker count, including the nil-pool sequential
// fallback.
func (n *Network) backwardBatchChunked(s *BatchScratch, chunkGrads []*Grads, chunkLoss []float64, xs, targets [][]float64, chunk int, panels []mat.Matrix, pool *parallel.Pool, zeroGrads bool) {
	if len(targets) != len(xs) {
		panic("nn: BackwardBatch xs/targets length mismatch")
	}
	if chunk < 1 {
		panic("nn: backwardBatchChunked with chunk < 1")
	}
	n.forwardBatch(s, xs, panels, pool)
	rows := len(xs)
	if rows == 0 {
		return
	}
	classes := n.Classes()
	last := len(n.Weights) - 1
	logits := &s.pre[last]
	dOut := &s.deltas[last]

	// chunkFan runs fn once per gradient chunk, pooled or sequential; the
	// partition is identical either way.
	chunkFan := func(fn func(c, lo, hi int)) {
		if pool == nil {
			for lo := 0; lo < rows; lo += chunk {
				fn(lo/chunk, lo, min(lo+chunk, rows))
			}
			return
		}
		pool.ForEachChunk(rows, chunk, func(_, lo, hi int) { fn(lo/chunk, lo, hi) })
	}

	chunkFan(func(c, lo, hi int) {
		if zeroGrads {
			chunkGrads[c].Zero()
		}
		var loss float64
		for r := lo; r < hi; r++ {
			target := targets[r]
			if len(target) != classes {
				panic("nn: BackwardBatch target length mismatch")
			}
			lrow := logits.Row(r)
			drow := dOut.Row(r)
			mat.Softmax(drow, lrow)
			lse := mat.LogSumExp(lrow)
			for j, tv := range target {
				if tv > 0 {
					loss += tv * (lse - lrow[j])
				}
				drow[j] -= tv
			}
		}
		chunkLoss[c] = loss
	})

	for l := last; l >= 0; l-- {
		delta := &s.deltas[l]
		acts := &s.acts[l]
		chunkFan(func(c, lo, hi int) {
			g := chunkGrads[c]
			dv := rowView(delta, lo, hi)
			av := rowView(acts, lo, hi)
			mat.GemmTN(g.Weights[l], &dv, &av)
			addColSums(g.Biases[l], delta, lo, hi)
		})
		if l > 0 {
			prev := &s.deltas[l-1]
			preAct := &s.pre[l-1]
			w := n.Weights[l]
			rowFan(pool, rows, func(lo, hi int) {
				zeroRows(prev, lo, hi)
				mat.GemmRows(prev, delta, w, lo, hi)
				// ReLU derivative gates on the pre-activation of layer l.
				reluGate(prev, preAct, lo, hi)
			})
		}
	}
}

// LossBatch computes the per-sample cross-entropy losses of the batch into
// out (len(xs) entries), bit-identical to per-sample Loss calls.
func (n *Network) LossBatch(s *BatchScratch, xs, targets [][]float64, out []float64) {
	n.lossBatch(s, xs, targets, out, nil)
}

// lossBatch is LossBatch over an optional shared prepacked panel set.
func (n *Network) lossBatch(s *BatchScratch, xs, targets [][]float64, out []float64, panels []mat.Matrix) {
	if len(targets) != len(xs) || len(out) != len(xs) {
		panic("nn: LossBatch length mismatch")
	}
	n.forwardBatch(s, xs, panels, nil)
	logits := s.Logits()
	for r := range xs {
		lrow := logits.Row(r)
		lse := mat.LogSumExp(lrow)
		var loss float64
		for c, t := range targets[r] {
			if t > 0 {
				loss += t * (lse - lrow[c])
			}
		}
		out[r] = loss
	}
}

// rowView returns a matrix viewing rows [lo, hi) of m, sharing its backing
// array. GEMMs over a row view walk exactly those rows, in order.
func rowView(m *mat.Matrix, lo, hi int) mat.Matrix {
	return mat.Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// zeroRows clears rows [lo, hi) of m.
func zeroRows(m *mat.Matrix, lo, hi int) {
	clear(m.Data[lo*m.Cols : hi*m.Cols])
}

// copyRows copies rows [lo, hi) of src into dst over equal-shaped matrices.
func copyRows(dst, src *mat.Matrix, lo, hi int) {
	copy(dst.Data[lo*dst.Cols:hi*dst.Cols], src.Data[lo*src.Cols:hi*src.Cols])
}

// reluRows writes dst = max(src, 0) element-wise over rows [lo, hi) of
// equal-shaped matrices.
func reluRows(dst, src *mat.Matrix, lo, hi int) {
	mat.Relu(dst.Data[lo*dst.Cols:hi*dst.Cols], src.Data[lo*src.Cols:hi*src.Cols])
}

// reluGate zeroes every delta in rows [lo, hi) whose matching
// pre-activation is <= 0.
func reluGate(delta, pre *mat.Matrix, lo, hi int) {
	mat.ReluGate(delta.Data[lo*delta.Cols:hi*delta.Cols], pre.Data[lo*pre.Cols:hi*pre.Cols])
}

// addColSums accumulates dst[j] += sum over rows [lo, hi) of m[r][j],
// sweeping rows in increasing order so each element's addition order matches
// a per-sample accumulation loop.
func addColSums(dst []float64, m *mat.Matrix, lo, hi int) {
	if len(dst) != m.Cols {
		panic("nn: addColSums length mismatch")
	}
	for r := lo; r < hi; r++ {
		mat.Axpy(1, m.Row(r), dst)
	}
}
