package nn

import (
	"fmt"

	"enld/internal/mat"
)

// BatchScratch holds the activation, pre-activation and delta matrices of a
// batched forward/backward pass: one row per sample, one matrix per layer.
// The zero value is ready to use; buffers grow to the largest batch seen and
// are reused afterwards, so steady-state batched passes allocate nothing.
//
// A BatchScratch belongs to one goroutine at a time. Concurrent batched
// passes against the same Network are safe with one scratch per worker: the
// forward/backward methods only read the network's parameters.
type BatchScratch struct {
	sizes   []int
	capRows int

	// Backing storage at capRows rows; the matrices below are views of the
	// current batch size into it.
	actsBack, preBack, deltasBack [][]float64

	acts   []mat.Matrix // acts[0] is the packed input batch
	pre    []mat.Matrix
	deltas []mat.Matrix
	probs  []float64 // per-row softmax buffer for the backward pass
	rows   int
}

// Rows returns the batch size of the most recent pass.
func (s *BatchScratch) Rows() int { return s.rows }

// Logits returns the output-layer pre-activation matrix of the most recent
// pass: row r holds the logits of sample r. The view stays valid until the
// next pass through this scratch.
func (s *BatchScratch) Logits() *mat.Matrix { return &s.pre[len(s.pre)-1] }

// Features returns the feature matrix M̂(x,θ) of the most recent pass: row r
// holds the post-ReLU last-hidden-layer activations of sample r.
func (s *BatchScratch) Features() *mat.Matrix { return &s.acts[len(s.acts)-2] }

// ensure sizes the scratch for a rows-sized batch of network n, growing the
// backing storage only when the architecture changed or rows exceeds every
// previous batch.
func (s *BatchScratch) ensure(n *Network, rows int) {
	L := len(n.sizes)
	same := len(s.sizes) == L
	if same {
		for i, v := range n.sizes {
			if s.sizes[i] != v {
				same = false
				break
			}
		}
	}
	if !same {
		s.sizes = append(s.sizes[:0], n.sizes...)
		s.capRows = 0
		s.actsBack = make([][]float64, L)
		s.preBack = make([][]float64, L-1)
		s.deltasBack = make([][]float64, L-1)
		s.acts = make([]mat.Matrix, L)
		s.pre = make([]mat.Matrix, L-1)
		s.deltas = make([]mat.Matrix, L-1)
		s.probs = make([]float64, n.sizes[L-1])
	}
	if rows > s.capRows {
		for i, size := range s.sizes {
			s.actsBack[i] = make([]float64, rows*size)
			if i > 0 {
				s.preBack[i-1] = make([]float64, rows*size)
				s.deltasBack[i-1] = make([]float64, rows*size)
			}
		}
		s.capRows = rows
	}
	for i, size := range s.sizes {
		s.acts[i] = mat.Matrix{Rows: rows, Cols: size, Data: s.actsBack[i][:rows*size]}
		if i > 0 {
			s.pre[i-1] = mat.Matrix{Rows: rows, Cols: size, Data: s.preBack[i-1][:rows*size]}
			s.deltas[i-1] = mat.Matrix{Rows: rows, Cols: size, Data: s.deltasBack[i-1][:rows*size]}
		}
	}
	s.rows = rows
}

// ForwardBatch runs the network on every input of xs in one pass: the inputs
// are packed row-major into a batch matrix and each layer is one GemmNT
// (Y += X·Wᵀ) followed by a batched bias add and ReLU. Results are
// bit-identical to per-sample forward calls — the GEMM kernels accumulate
// each output element with the same sequential k-loop MulVec uses (see
// internal/mat and DESIGN.md §4) — while loading each weight matrix once per
// batch instead of once per sample.
//
// The outputs stay in s: s.Logits() and s.Features() view the last pass.
func (n *Network) ForwardBatch(s *BatchScratch, xs [][]float64) {
	s.ensure(n, len(xs))
	if len(xs) == 0 {
		return
	}
	in := &s.acts[0]
	for r, x := range xs {
		if len(x) != n.sizes[0] {
			panic(fmt.Sprintf("nn: batch input length %d, want %d", len(x), n.sizes[0]))
		}
		copy(in.Row(r), x)
	}
	last := len(n.Weights) - 1
	for l, w := range n.Weights {
		out := &s.pre[l]
		out.Zero()
		mat.GemmNT(out, &s.acts[l], w)
		for r := 0; r < out.Rows; r++ {
			mat.Axpy(1, n.Biases[l], out.Row(r))
		}
		if l < last {
			reluRows(&s.acts[l+1], out)
		} else {
			copy(s.acts[l+1].Data, out.Data)
		}
	}
}

// BackwardBatch accumulates into g the cross-entropy gradient of the whole
// batch (xs[r], targets[r]) and returns the summed loss. It is the batched
// counterpart of per-sample Backward calls in row order, bit-identical to
// them: the weight gradient is one GemmTN (gW += deltaᵀ·acts) whose
// sequential batch-row loop reproduces the per-sample AddOuter order, the
// bias gradient sums delta columns in row order, and the delta
// back-propagation is one Gemm (dPrev = delta·W) matching MulVecT's
// accumulation order.
func (n *Network) BackwardBatch(s *BatchScratch, g *Grads, xs, targets [][]float64) float64 {
	if len(targets) != len(xs) {
		panic("nn: BackwardBatch xs/targets length mismatch")
	}
	n.ForwardBatch(s, xs)
	if len(xs) == 0 {
		return 0
	}
	classes := n.Classes()
	last := len(n.Weights) - 1
	logits := &s.pre[last]
	dOut := &s.deltas[last]
	var loss float64
	for r := range xs {
		target := targets[r]
		if len(target) != classes {
			panic("nn: BackwardBatch target length mismatch")
		}
		lrow := logits.Row(r)
		mat.Softmax(s.probs, lrow)
		lse := mat.LogSumExp(lrow)
		drow := dOut.Row(r)
		for c := range drow {
			drow[c] = s.probs[c] - target[c]
			if target[c] > 0 {
				loss += target[c] * (lse - lrow[c])
			}
		}
	}
	for l := last; l >= 0; l-- {
		delta := &s.deltas[l]
		mat.GemmTN(g.Weights[l], delta, &s.acts[l])
		addColSums(g.Biases[l], delta)
		if l > 0 {
			prev := &s.deltas[l-1]
			prev.Zero()
			mat.Gemm(prev, delta, n.Weights[l])
			// ReLU derivative gates on the pre-activation of layer l.
			reluGate(prev, &s.pre[l-1])
		}
	}
	return loss
}

// LossBatch computes the per-sample cross-entropy losses of the batch into
// out (len(xs) entries), bit-identical to per-sample Loss calls.
func (n *Network) LossBatch(s *BatchScratch, xs, targets [][]float64, out []float64) {
	if len(targets) != len(xs) || len(out) != len(xs) {
		panic("nn: LossBatch length mismatch")
	}
	n.ForwardBatch(s, xs)
	logits := s.Logits()
	for r := range xs {
		lrow := logits.Row(r)
		lse := mat.LogSumExp(lrow)
		var loss float64
		for c, t := range targets[r] {
			if t > 0 {
				loss += t * (lse - lrow[c])
			}
		}
		out[r] = loss
	}
}

// reluRows writes dst = max(src, 0) element-wise over equal-shaped matrices.
func reluRows(dst, src *mat.Matrix) {
	d, s := dst.Data, src.Data
	for i, v := range s {
		if v > 0 {
			d[i] = v
		} else {
			d[i] = 0
		}
	}
}

// reluGate zeroes every delta whose matching pre-activation is <= 0.
func reluGate(delta, pre *mat.Matrix) {
	d, p := delta.Data, pre.Data
	for i, v := range p {
		if v <= 0 {
			d[i] = 0
		}
	}
}

// addColSums accumulates dst[j] += sum over rows of m[r][j], sweeping rows in
// increasing order so each element's addition order matches a per-sample
// accumulation loop.
func addColSums(dst []float64, m *mat.Matrix) {
	if len(dst) != m.Cols {
		panic("nn: addColSums length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		mat.Axpy(1, m.Row(r), dst)
	}
}
