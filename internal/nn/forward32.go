package nn

import (
	"fmt"

	"enld/internal/mat"
	"enld/internal/parallel"
)

// The float32 ranking path (DESIGN.md §4).
//
// A Network32 is a forward-only float32 snapshot of a Network: weights
// rounded to float32 and pre-packed as Wᵀ panels, biases rounded to
// float32. Its batched forward pass runs entirely in float32 — a different,
// *versioned* numeric profile from the float64 reference, suited to outputs
// that feed only ranking decisions (argmax votes, top-k neighbor selection,
// confidence ordering), where the ≲1e-4 relative drift bounded by the
// differential tests cannot flip decisions the detection pipeline's
// guardrails don't already tolerate.
//
// Within the profile the determinism contract is unchanged: float32
// arithmetic rounds once per multiply and add on both the scalar and the
// AVX2 path, every output element accumulates over a sequential k-loop, and
// the batch helpers split work over samples only. Results are bit-identical
// at any worker count and with SIMD on or off. Training never runs in
// float32 — only scoring passes whose consumers rank.

// Network32 is a forward-only float32 snapshot of a Network. Build one with
// Network.Snapshot32 and refresh it after the source network trains. A
// Network32 is immutable between refreshes and safe for concurrent forward
// passes (one BatchScratch32 per goroutine).
type Network32 struct {
	sizes  []int
	panels []mat.Matrix32 // panels[l] is Weights[l]ᵀ rounded to float32
	biases [][]float32
}

// Snapshot32 rounds the network's current parameters into dst, reusing
// dst's storage. The weight matrices are packed transposed (Wᵀ), ready for
// the row-blocked NN-shape float32 GEMM.
func (n *Network) Snapshot32(dst *Network32) {
	dst.sizes = append(dst.sizes[:0], n.sizes...)
	for len(dst.panels) < len(n.Weights) {
		dst.panels = append(dst.panels, mat.Matrix32{})
		dst.biases = append(dst.biases, nil)
	}
	for l, w := range n.Weights {
		p := &dst.panels[l]
		p.Resize(w.Cols, w.Rows)
		out := w.Rows
		for j := 0; j < out; j++ {
			row := w.Row(j)
			for i, v := range row {
				p.Data[i*out+j] = float32(v)
			}
		}
		if len(dst.biases[l]) != len(n.Biases[l]) {
			dst.biases[l] = make([]float32, len(n.Biases[l]))
		}
		mat.Round32(dst.biases[l], n.Biases[l])
	}
}

// InputDim returns the expected input vector length.
func (n *Network32) InputDim() int { return n.sizes[0] }

// Classes returns the number of output classes.
func (n *Network32) Classes() int { return n.sizes[len(n.sizes)-1] }

// BatchScratch32 holds the activation matrices of a float32 batched forward
// pass. The zero value is ready to use; buffers grow to the largest batch
// seen. A BatchScratch32 belongs to one goroutine.
type BatchScratch32 struct {
	sizes    []int
	capRows  int
	actsBack [][]float32
	acts     []mat.Matrix32 // acts[0] is the rounded input batch
	rows     int
}

// Rows returns the batch size of the most recent pass.
func (s *BatchScratch32) Rows() int { return s.rows }

// Logits returns the output-layer logits of the most recent pass.
func (s *BatchScratch32) Logits() *mat.Matrix32 { return &s.acts[len(s.acts)-1] }

// Features returns the post-ReLU last-hidden-layer activations of the most
// recent pass.
func (s *BatchScratch32) Features() *mat.Matrix32 { return &s.acts[len(s.acts)-2] }

func (s *BatchScratch32) ensure(n *Network32, rows int) {
	L := len(n.sizes)
	same := len(s.sizes) == L
	if same {
		for i, v := range n.sizes {
			if s.sizes[i] != v {
				same = false
				break
			}
		}
	}
	if !same {
		s.sizes = append(s.sizes[:0], n.sizes...)
		s.capRows = 0
		s.actsBack = make([][]float32, L)
		s.acts = make([]mat.Matrix32, L)
	}
	if rows > s.capRows {
		for i, size := range s.sizes {
			s.actsBack[i] = make([]float32, rows*size)
		}
		s.capRows = rows
	}
	for i, size := range s.sizes {
		s.acts[i] = mat.Matrix32{Rows: rows, Cols: size, Data: s.actsBack[i][:rows*size]}
	}
	s.rows = rows
}

// ForwardBatch32 runs the float32 forward pass on every input of xs: inputs
// are rounded to float32 once on entry, then each layer is one row-blocked
// float32 GEMM against the snapshot's Wᵀ panel, a float32 bias add and an
// in-place ReLU. The outputs stay in s (Logits/Features).
func (n *Network32) ForwardBatch32(s *BatchScratch32, xs [][]float64) {
	s.ensure(n, len(xs))
	if len(xs) == 0 {
		return
	}
	in := &s.acts[0]
	for r, x := range xs {
		if len(x) != n.sizes[0] {
			panic(fmt.Sprintf("nn: batch input length %d, want %d", len(x), n.sizes[0]))
		}
		mat.Round32(in.Row(r), x)
	}
	last := len(n.panels) - 1
	for l := range n.panels {
		out := &s.acts[l+1]
		out.Zero()
		mat.Gemm32(out, &s.acts[l], &n.panels[l])
		for r := 0; r < out.Rows; r++ {
			mat.Add32(out.Row(r), n.biases[l])
		}
		if l < last {
			mat.Relu32(out.Data)
		}
	}
}

// forEachBatch32 runs fn over fixed-size chunks of [0, count), one private
// BatchScratch32 per worker, mirroring the float64 inference helpers: the
// chunk partition depends only on count and every sample writes only its
// own output slot, so results are identical at any worker count.
func forEachBatch32(count, workers int, fn func(s *BatchScratch32, lo, hi int)) {
	pool := parallel.New(workers)
	scratch := make([]BatchScratch32, pool.Workers())
	pool.ForEachChunk(count, batchChunk, func(w, lo, hi int) {
		fn(&scratch[w], lo, hi)
	})
}

// EvaluateBatch32 runs the float32 forward pass over xs and returns the
// softmax confidence and feature vectors, parallel to xs. The logits and
// features are widened back to float64 per row (exact — every float32 is a
// float64), and softmax runs in float64, so downstream consumers see the
// usual types; only the linear algebra ran in the float32 profile.
func (n *Network32) EvaluateBatch32(xs [][]float64, workers int) (confs, feats [][]float64) {
	confs = make([][]float64, len(xs))
	feats = make([][]float64, len(xs))
	forEachBatch32(len(xs), workers, func(s *BatchScratch32, lo, hi int) {
		n.ForwardBatch32(s, xs[lo:hi])
		logits, featm := s.Logits(), s.Features()
		lbuf := make([]float64, logits.Cols)
		for r := 0; r < hi-lo; r++ {
			widen(lbuf, logits.Row(r))
			conf := make([]float64, logits.Cols)
			mat.Softmax(conf, lbuf)
			confs[lo+r] = conf
			f := make([]float64, featm.Cols)
			widen(f, featm.Row(r))
			feats[lo+r] = f
		}
	})
	return confs, feats
}

// PredictBatch32 returns argmax over the float32 logits for every input.
func (n *Network32) PredictBatch32(xs [][]float64, workers int) []int {
	out := make([]int, len(xs))
	forEachBatch32(len(xs), workers, func(s *BatchScratch32, lo, hi int) {
		n.ForwardBatch32(s, xs[lo:hi])
		logits := s.Logits()
		for r := 0; r < hi-lo; r++ {
			out[lo+r] = mat.ArgMax32(logits.Row(r))
		}
	})
	return out
}

// widen copies float32 values into a float64 slice (exact).
func widen(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}
