package nn

import (
	"bytes"
	"math"
	"testing"

	"enld/internal/mat"
)

// twoBlobs builds a linearly separable 2-class problem.
func twoBlobs(n int, seed uint64) []Example {
	rng := mat.NewRNG(seed)
	out := make([]Example, 0, 2*n)
	for i := 0; i < n; i++ {
		x0 := []float64{rng.Norm()*0.3 + 2, rng.Norm() * 0.3}
		x1 := []float64{rng.Norm()*0.3 - 2, rng.Norm() * 0.3}
		out = append(out,
			Example{X: x0, Target: OneHot(0, 2)},
			Example{X: x1, Target: OneHot(1, 2)},
		)
	}
	return out
}

func TestTrainingLearnsSeparableProblem(t *testing.T) {
	examples := twoBlobs(100, 1)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
	stats, err := tr.Run(examples, TrainConfig{Epochs: 20, BatchSize: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, examples); acc < 0.98 {
		t.Fatalf("accuracy after training = %v", acc)
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].MeanLoss, stats[len(stats)-1].MeanLoss)
	}
}

func TestTrainingWithAdam(t *testing.T) {
	examples := twoBlobs(100, 4)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(5))
	tr := NewTrainer(net, NewAdam(0.01))
	if _, err := tr.Run(examples, TrainConfig{Epochs: 15, BatchSize: 16, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, examples); acc < 0.98 {
		t.Fatalf("Adam accuracy = %v", acc)
	}
}

func TestTrainingWithMixup(t *testing.T) {
	examples := twoBlobs(100, 7)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(8))
	tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
	_, err := tr.Run(examples, TrainConfig{Epochs: 25, BatchSize: 16, Mixup: true, MixupAlpha: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, examples); acc < 0.95 {
		t.Fatalf("mixup accuracy = %v", acc)
	}
}

func TestRunRejectsEmptyAndMalformed(t *testing.T) {
	net := NewNetwork([]int{2, 3, 2}, mat.NewRNG(1))
	tr := NewTrainer(net, NewSGD(0.1, 0, 0))
	if _, err := tr.Run(nil, TrainConfig{}); err == nil {
		t.Fatal("empty example set accepted")
	}
	bad := []Example{{X: []float64{1}, Target: OneHot(0, 2)}}
	if _, err := tr.Run(bad, TrainConfig{}); err == nil {
		t.Fatal("malformed example accepted")
	}
}

func TestTrainingDeterminism(t *testing.T) {
	run := func() []float64 {
		examples := twoBlobs(30, 10)
		net := NewNetwork([]int{2, 6, 2}, mat.NewRNG(11))
		tr := NewTrainer(net, NewSGD(0.05, 0.9, 1e-4))
		if _, err := tr.Run(examples, TrainConfig{Epochs: 5, BatchSize: 8, Mixup: true, Seed: 12}); err != nil {
			t.Fatal(err)
		}
		return net.Confidences([]float64{0.5, 0.5})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not deterministic under fixed seeds")
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	examples := twoBlobs(50, 13)
	norm := func(decay float64) float64 {
		net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(14))
		tr := NewTrainer(net, NewSGD(0.1, 0.9, decay))
		if _, err := tr.Run(examples, TrainConfig{Epochs: 30, BatchSize: 16, Seed: 15}); err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, w := range net.Weights {
			s += mat.Dot(w.Data, w.Data)
		}
		return s
	}
	if norm(0.01) >= norm(0) {
		t.Fatal("weight decay did not shrink weight norm")
	}
}

func TestMeanLossAndAccuracyEmpty(t *testing.T) {
	net := NewNetwork([]int{2, 3, 2}, mat.NewRNG(1))
	if MeanLoss(net, nil) != 0 {
		t.Error("MeanLoss(empty) != 0")
	}
	if Accuracy(net, nil) != 0 {
		t.Error("Accuracy(empty) != 0")
	}
}

func TestOptimizerReset(t *testing.T) {
	net := NewNetwork([]int{2, 3, 2}, mat.NewRNG(1))
	g := net.NewGrads()
	net.Backward(g, []float64{1, 1}, OneHot(0, 2))
	sgd := NewSGD(0.1, 0.9, 0)
	sgd.Step(net, g, 1)
	sgd.Reset()
	sgd.Step(net, g, 1) // must not panic after reset
	adam := NewAdam(0.01)
	adam.Step(net, g, 1)
	adam.Reset()
	adam.Step(net, g, 1)
}

func TestStepIgnoresEmptyBatch(t *testing.T) {
	net := NewNetwork([]int{2, 3, 2}, mat.NewRNG(1))
	before := net.Clone()
	g := net.NewGrads()
	NewSGD(0.1, 0.9, 0).Step(net, g, 0)
	NewAdam(0.01).Step(net, g, 0)
	if !net.Weights[0].Equal(before.Weights[0], 0) {
		t.Fatal("Step with batchSize=0 changed parameters")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := NewNetwork([]int{3, 5, 4}, mat.NewRNG(20))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 2}
	a, b := net.Confidences(x), loaded.Confidences(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded network differs from saved one")
		}
	}
	// Loaded network must be trainable (scratch buffers rebuilt).
	g := loaded.NewGrads()
	loaded.Backward(g, x, OneHot(0, 4))
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestBuildArchitectures(t *testing.T) {
	for _, a := range Architectures() {
		net, err := Build(a, 16, 10, mat.NewRNG(1))
		if err != nil {
			t.Fatalf("Build(%s): %v", a, err)
		}
		if net.InputDim() != 16 || net.Classes() != 10 {
			t.Fatalf("Build(%s) wrong dims", a)
		}
	}
	if _, err := Build("nope", 16, 10, mat.NewRNG(1)); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if _, err := Build(SimResNet110, 0, 10, mat.NewRNG(1)); err == nil {
		t.Fatal("zero input dim accepted")
	}
}

func TestArchitecturesDiffer(t *testing.T) {
	// The three families must actually differ in parameter count, otherwise
	// the Fig. 6 experiment is vacuous.
	counts := map[int]bool{}
	for _, a := range Architectures() {
		net, err := Build(a, 16, 10, mat.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		counts[net.NumParams()] = true
	}
	if len(counts) != len(Architectures()) {
		t.Fatalf("architectures do not differ in size: %v", counts)
	}
}

func TestMixupLossFiniteUnderExtremeAlpha(t *testing.T) {
	examples := twoBlobs(20, 30)
	net := NewNetwork([]int{2, 4, 2}, mat.NewRNG(31))
	tr := NewTrainer(net, NewSGD(0.1, 0, 0))
	stats, err := tr.Run(examples, TrainConfig{Epochs: 2, BatchSize: 8, Mixup: true, MixupAlpha: 0.05, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if math.IsNaN(s.MeanLoss) || math.IsInf(s.MeanLoss, 0) {
			t.Fatalf("non-finite loss: %v", s.MeanLoss)
		}
	}
}

func TestClipNormPreventsDivergence(t *testing.T) {
	examples := twoBlobs(60, 40)
	// LR 0.05 with momentum diverges unclipped on this architecture (see
	// NewSGD's doc); clipping must keep the loss finite.
	unclipped := NewSGD(0.05, 0.9, 0)
	unclipped.ClipNorm = 0
	netA := NewNetwork([]int{2, 64, 48, 2}, mat.NewRNG(41))
	trA := NewTrainer(netA, unclipped)
	statsA, err := trA.Run(examples, TrainConfig{Epochs: 10, BatchSize: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	clipped := NewSGD(0.05, 0.9, 0) // default ClipNorm 5
	netB := NewNetwork([]int{2, 64, 48, 2}, mat.NewRNG(41))
	trB := NewTrainer(netB, clipped)
	statsB, err := trB.Run(examples, TrainConfig{Epochs: 10, BatchSize: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	lastB := statsB[len(statsB)-1].MeanLoss
	if math.IsNaN(lastB) || math.IsInf(lastB, 0) {
		t.Fatalf("clipped training diverged: %v", lastB)
	}
	// The unclipped run may or may not diverge depending on init; the
	// clipped run must do at least as well whenever the unclipped one blew
	// up.
	lastA := statsA[len(statsA)-1].MeanLoss
	if !math.IsNaN(lastA) && !math.IsInf(lastA, 0) && lastB > lastA*10+1 {
		t.Fatalf("clipping hurt badly: clipped %v vs unclipped %v", lastB, lastA)
	}
}
