package nn

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"enld/internal/mat"
)

func snapshotBytes(t *testing.T, net *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func equalParams(a, b *Network) bool {
	for l := range a.Weights {
		for i, v := range a.Weights[l].Data {
			if b.Weights[l].Data[i] != v {
				return false
			}
		}
		for i, v := range a.Biases[l] {
			if b.Biases[l][i] != v {
				return false
			}
		}
	}
	return true
}

// TestLoadRejectsEveryByteCorruption flips every single byte of a valid
// snapshot in turn: each variant must fail to load, whichever of the header
// fields or the payload the flip lands in.
func TestLoadRejectsEveryByteCorruption(t *testing.T) {
	net := NewNetwork([]int{3, 5, 2}, mat.NewRNG(11))
	data := snapshotBytes(t, net)
	for off := range data {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0xff
		if _, err := Load(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("snapshot with byte %d flipped loaded successfully", off)
		}
	}
}

// TestLoadRejectsEveryTruncation cuts a valid snapshot at every possible
// prefix length: none may load.
func TestLoadRejectsEveryTruncation(t *testing.T) {
	net := NewNetwork([]int{3, 5, 2}, mat.NewRNG(11))
	data := snapshotBytes(t, net)
	for n := 0; n < len(data); n++ {
		if _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes loaded successfully", n, len(data))
		}
	}
}

func TestLoadErrorMessagesNameTheFailure(t *testing.T) {
	net := NewNetwork([]int{3, 5, 2}, mat.NewRNG(11))
	data := snapshotBytes(t, net)

	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantSub string
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"future version", func(b []byte) []byte { b[7] = 9; return b }, "unsupported snapshot version"},
		{"huge declared size", func(b []byte) []byte { b[8] = 0xff; return b }, "exceeds"},
		{"short payload", func(b []byte) []byte { return b[:len(b)-3] }, "truncated snapshot"},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum mismatch"},
	}
	for _, tc := range cases {
		mutated := tc.mutate(append([]byte(nil), data...))
		_, err := Load(bytes.NewReader(mutated))
		if err == nil {
			t.Fatalf("%s: load succeeded", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestLoadRejectsNonPositiveLayerSizes(t *testing.T) {
	for _, sizes := range [][]int{{2, 0, 2}, {2, -3, 2}, {0, 2}, {2}} {
		s := snapshot{Sizes: sizes}
		for l := 0; l+1 < len(sizes); l++ {
			rows, cols := sizes[l+1], sizes[l]
			if rows < 0 || cols < 0 {
				rows, cols = 0, 0
			}
			s.Weights = append(s.Weights, make([]float64, rows*cols))
			s.Biases = append(s.Biases, make([]float64, rows))
		}
		data, err := encodeSnapshot(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Fatalf("snapshot with sizes %v loaded successfully", sizes)
		}
	}
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.nn")
	net := NewNetwork([]int{4, 6, 3}, mat.NewRNG(5))
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalParams(net, got) {
		t.Fatal("loaded parameters differ from saved")
	}

	// Overwrite with a different network: the replacement is atomic and
	// leaves no temporary files behind.
	net2 := NewNetwork([]int{4, 6, 3}, mat.NewRNG(6))
	if err := net2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalParams(net2, got2) || equalParams(net, got2) {
		t.Fatal("overwrite did not replace the snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.nn" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only model.nn", names)
	}
}

func TestSaveFileFailureKeepsPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.nn")
	net := NewNetwork([]int{4, 6, 3}, mat.NewRNG(5))
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Saving into a missing directory fails without touching the original.
	if err := net.SaveFile(filepath.Join(dir, "missing", "model.nn")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("original snapshot damaged: %v", err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.nn")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
