package nn

import (
	"enld/internal/mat"

	"enld/internal/parallel"
)

// The batch inference helpers split a slice of inputs into fixed-size batch
// chunks and fan the chunks out over a worker pool; each worker runs one
// blocked-GEMM ForwardBatch per chunk through a private BatchScratch. The
// chunk partition depends only on len(xs), every input writes only its own
// output slot, and the batched kernels are bit-identical to the per-sample
// forward pass, so results are independent of scheduling and identical to a
// sequential per-sample loop at any worker count.
// workers <= 0 selects parallel.DefaultWorkers().

// batchChunk is the fixed batch-chunk size of the inference helpers: large
// enough that each weight matrix is loaded once per 64 samples, small enough
// that a shard split across a pool keeps every worker busy.
const batchChunk = 64

// forEachBatch runs fn over fixed-size chunks of [0, count), one private
// BatchScratch per worker. The network's Wᵀ panels are packed once per call
// and shared read-only across the workers, so each chunk's forward pass
// (through forwardBatch/lossBatch with the supplied panels) skips its own
// repack.
func (n *Network) forEachBatch(count int, workers int, fn func(s *BatchScratch, panels []mat.Matrix, lo, hi int)) {
	pool := parallel.New(workers)
	scratch := make([]BatchScratch, pool.Workers())
	var panels []mat.Matrix
	n.packPanels(&panels)
	pool.ForEachChunk(count, batchChunk, func(w, lo, hi int) {
		fn(&scratch[w], panels, lo, hi)
	})
}

// ConfidencesBatch computes M(x,θ) for every input, returning one fresh
// confidence vector per input.
func (n *Network) ConfidencesBatch(xs [][]float64, workers int) [][]float64 {
	out := make([][]float64, len(xs))
	n.forEachBatch(len(xs), workers, func(s *BatchScratch, panels []mat.Matrix, lo, hi int) {
		n.forwardBatch(s, xs[lo:hi], panels, nil)
		logits := s.Logits()
		for r := 0; r < hi-lo; r++ {
			conf := make([]float64, logits.Cols)
			mat.Softmax(conf, logits.Row(r))
			out[lo+r] = conf
		}
	})
	return out
}

// FeaturesBatch computes M̂(x,θ) for every input, returning one fresh
// feature vector per input.
func (n *Network) FeaturesBatch(xs [][]float64, workers int) [][]float64 {
	out := make([][]float64, len(xs))
	n.forEachBatch(len(xs), workers, func(s *BatchScratch, panels []mat.Matrix, lo, hi int) {
		n.forwardBatch(s, xs[lo:hi], panels, nil)
		feats := s.Features()
		for r := 0; r < hi-lo; r++ {
			out[lo+r] = append([]float64(nil), feats.Row(r)...)
		}
	})
	return out
}

// EvaluateBatch runs one batched forward pass per chunk and returns both the
// confidence and feature vectors, parallel to xs. Detectors scoring a full
// shard should prefer this over per-sample Evaluate calls.
func (n *Network) EvaluateBatch(xs [][]float64, workers int) (confs, feats [][]float64) {
	confs = make([][]float64, len(xs))
	feats = make([][]float64, len(xs))
	n.forEachBatch(len(xs), workers, func(s *BatchScratch, panels []mat.Matrix, lo, hi int) {
		n.forwardBatch(s, xs[lo:hi], panels, nil)
		logits, featm := s.Logits(), s.Features()
		for r := 0; r < hi-lo; r++ {
			conf := make([]float64, logits.Cols)
			mat.Softmax(conf, logits.Row(r))
			confs[lo+r] = conf
			feats[lo+r] = append([]float64(nil), featm.Row(r)...)
		}
	})
	return confs, feats
}

// PredictBatch returns argmax M(x,θ) for every input.
func (n *Network) PredictBatch(xs [][]float64, workers int) []int {
	out := make([]int, len(xs))
	n.forEachBatch(len(xs), workers, func(s *BatchScratch, panels []mat.Matrix, lo, hi int) {
		n.forwardBatch(s, xs[lo:hi], panels, nil)
		logits := s.Logits()
		for r := 0; r < hi-lo; r++ {
			out[lo+r] = mat.ArgMax(logits.Row(r))
		}
	})
	return out
}

// LossesBatch computes the cross-entropy loss of every (xs[i], targets[i])
// pair, the batched counterpart of a per-sample Loss loop.
func (n *Network) LossesBatch(xs, targets [][]float64, workers int) []float64 {
	out := make([]float64, len(xs))
	n.forEachBatch(len(xs), workers, func(s *BatchScratch, panels []mat.Matrix, lo, hi int) {
		n.lossBatch(s, xs[lo:hi], targets[lo:hi], out[lo:hi], panels)
	})
	return out
}
