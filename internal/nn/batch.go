package nn

import (
	"enld/internal/mat"

	"enld/internal/parallel"
)

// The batch inference helpers fan a slice of inputs out over a worker pool,
// each worker running forward passes on a private Replica of the network.
// Every input writes only its own output slot, so results are independent of
// scheduling and identical to a sequential loop at any worker count.
// workers <= 0 selects parallel.DefaultWorkers().

// replicas returns per-worker networks: slot 0 is n itself (the single-worker
// path reuses the caller's scratch), the rest are fresh replicas.
func (n *Network) replicas(count int) []*Network {
	reps := make([]*Network, count)
	reps[0] = n
	for i := 1; i < count; i++ {
		reps[i] = n.Replica()
	}
	return reps
}

// ConfidencesBatch computes M(x,θ) for every input, returning one fresh
// confidence vector per input.
func (n *Network) ConfidencesBatch(xs [][]float64, workers int) [][]float64 {
	out := make([][]float64, len(xs))
	pool := parallel.New(workers)
	reps := n.replicas(pool.Workers())
	pool.ForEach(len(xs), func(w, i int) {
		out[i] = reps[w].Confidences(xs[i])
	})
	return out
}

// FeaturesBatch computes M̂(x,θ) for every input, returning one fresh
// feature vector per input.
func (n *Network) FeaturesBatch(xs [][]float64, workers int) [][]float64 {
	out := make([][]float64, len(xs))
	pool := parallel.New(workers)
	reps := n.replicas(pool.Workers())
	pool.ForEach(len(xs), func(w, i int) {
		out[i] = reps[w].Features(xs[i])
	})
	return out
}

// EvaluateBatch runs one forward pass per input and returns both the
// confidence and feature vectors, parallel to xs. Detectors scoring a full
// shard should prefer this over per-sample Evaluate calls.
func (n *Network) EvaluateBatch(xs [][]float64, workers int) (confs, feats [][]float64) {
	confs = make([][]float64, len(xs))
	feats = make([][]float64, len(xs))
	pool := parallel.New(workers)
	reps := n.replicas(pool.Workers())
	pool.ForEach(len(xs), func(w, i int) {
		confs[i], feats[i] = reps[w].Evaluate(xs[i])
	})
	return confs, feats
}

// PredictBatch returns argmax M(x,θ) for every input.
func (n *Network) PredictBatch(xs [][]float64, workers int) []int {
	out := make([]int, len(xs))
	pool := parallel.New(workers)
	reps := n.replicas(pool.Workers())
	pool.ForEach(len(xs), func(w, i int) {
		out[i] = mat.ArgMax(reps[w].forward(xs[i]))
	})
	return out
}
