package nn

import (
	"math"

	"enld/internal/mat"
)

// checkpoint is one retained good training state: a deep copy of the
// network's parameters, the RNG state that reproduces the exact shuffle and
// mixup stream from this point, and an integrity checksum over the parameter
// bits. The checksum makes the ring self-verifying: a checkpoint corrupted in
// memory (the bit-flip failure mode the fault injectors model) is detected
// and skipped at restore time instead of silently reinstating bad weights.
type checkpoint struct {
	epoch   int
	weights [][]float64
	biases  [][]float64
	rng     mat.RNG
	sum     uint64
}

// paramSum hashes the parameter bit patterns with FNV-1a. Bit patterns (not
// float values) so that even a single flipped mantissa bit changes the sum,
// and NaNs hash deterministically.
func paramSum(weights, biases [][]float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(vs []float64) {
		for _, v := range vs {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= prime
			}
		}
	}
	for l := range weights {
		mix(weights[l])
		mix(biases[l])
	}
	return h
}

// checkpointRing retains the last size good checkpoints, newest last.
type checkpointRing struct {
	entries []*checkpoint
	size    int
}

func newCheckpointRing(size int) *checkpointRing {
	return &checkpointRing{size: size}
}

// capture records net's current parameters and rng state as a good
// checkpoint for epoch. When the ring is full the oldest entry's buffers are
// reused, so steady-state captures do not allocate.
func (r *checkpointRing) capture(net *Network, rng mat.RNG, epoch int) {
	var ck *checkpoint
	if len(r.entries) == r.size {
		ck = r.entries[0]
		r.entries = append(r.entries[:0], r.entries[1:]...)
	} else {
		ck = &checkpoint{}
		for l, w := range net.Weights {
			ck.weights = append(ck.weights, make([]float64, len(w.Data)))
			ck.biases = append(ck.biases, make([]float64, len(net.Biases[l])))
		}
	}
	for l, w := range net.Weights {
		copy(ck.weights[l], w.Data)
		copy(ck.biases[l], net.Biases[l])
	}
	ck.epoch = epoch
	ck.rng = rng
	ck.sum = paramSum(ck.weights, ck.biases)
	r.entries = append(r.entries, ck)
}

// restore copies the newest checkpoint whose checksum still verifies back
// into net and returns it, discarding any entries that fail verification
// (their count is returned as verifyFailures). It returns a nil checkpoint
// when no retained entry verifies. The restored entry stays in the ring, so
// repeated failures can roll back to the same state again.
func (r *checkpointRing) restore(net *Network) (ck *checkpoint, verifyFailures int) {
	for len(r.entries) > 0 {
		cand := r.entries[len(r.entries)-1]
		if paramSum(cand.weights, cand.biases) != cand.sum {
			verifyFailures++
			r.entries = r.entries[:len(r.entries)-1]
			continue
		}
		for l := range net.Weights {
			copy(net.Weights[l].Data, cand.weights[l])
			copy(net.Biases[l], cand.biases[l])
		}
		return cand, verifyFailures
	}
	return nil, verifyFailures
}
