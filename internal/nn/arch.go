package nn

import (
	"fmt"
	"sort"

	"enld/internal/mat"
)

// Arch names a network family used in the paper's evaluation. The original
// work trains convolutional networks on images; this reproduction substitutes
// multi-layer perceptrons over feature vectors (see DESIGN.md §1). The three
// named configurations differ in depth and width the same way the paper's
// families do, which is what Fig. 6's architecture-generalization experiment
// exercises.
type Arch string

const (
	// SimResNet110 is the default architecture, standing in for ResNet-110.
	SimResNet110 Arch = "sim-resnet110"
	// SimDenseNet121 stands in for DenseNet-121: wider, shallower.
	SimDenseNet121 Arch = "sim-densenet121"
	// SimResNet164 stands in for ResNet-164: deeper, narrower.
	SimResNet164 Arch = "sim-resnet164"
)

// archHidden maps each architecture to its hidden-layer widths.
var archHidden = map[Arch][]int{
	SimResNet110:   {128, 96, 64},
	SimDenseNet121: {192, 128},
	SimResNet164:   {128, 96, 96, 64},
}

// Architectures returns the known architecture names in sorted order.
func Architectures() []Arch {
	out := make([]Arch, 0, len(archHidden))
	for a := range archHidden {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Build constructs a network of architecture a for the given input dimension
// and class count. It returns an error for unknown architectures.
func Build(a Arch, inputDim, classes int, rng *mat.RNG) (*Network, error) {
	hidden, ok := archHidden[a]
	if !ok {
		return nil, fmt.Errorf("nn: unknown architecture %q", a)
	}
	if inputDim <= 0 || classes <= 0 {
		return nil, fmt.Errorf("nn: invalid dimensions input=%d classes=%d", inputDim, classes)
	}
	sizes := make([]int, 0, len(hidden)+2)
	sizes = append(sizes, inputDim)
	sizes = append(sizes, hidden...)
	sizes = append(sizes, classes)
	return NewNetwork(sizes, rng), nil
}
