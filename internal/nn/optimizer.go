package nn

import (
	"math"

	"enld/internal/mat"
)

// Optimizer applies accumulated gradients to a network's parameters.
// Implementations own any per-parameter state (momentum buffers, Adam
// moments) and must be used with a single network for their lifetime.
type Optimizer interface {
	// Step applies the gradients in g, averaged over batchSize samples, to n.
	Step(n *Network, g *Grads, batchSize int)
	// Reset clears optimizer state (momentum/moment buffers).
	Reset()
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay. It is the paper's optimizer (universal cross-entropy
// training of ResNet variants).
type SGD struct {
	LR          float64 // learning rate
	Momentum    float64 // momentum coefficient, 0 disables
	WeightDecay float64 // L2 penalty coefficient, 0 disables
	// ClipNorm caps the global L2 norm of each batch's (averaged) gradient;
	// 0 disables clipping. Deep ReLU stacks on unnormalized feature inputs
	// can emit exploding gradients early in training, and clipping keeps a
	// single bad batch from destroying the parameters.
	ClipNorm float64

	velW []*mat.Matrix
	velB [][]float64
}

// NewSGD returns an SGD optimizer with the given hyperparameters and
// gradient clipping at global norm 5.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, ClipNorm: 5}
}

func (s *SGD) ensureState(n *Network) {
	if s.velW != nil {
		return
	}
	for l, w := range n.Weights {
		s.velW = append(s.velW, mat.NewMatrix(w.Rows, w.Cols))
		s.velB = append(s.velB, make([]float64, len(n.Biases[l])))
	}
}

// Step implements Optimizer.
func (s *SGD) Step(n *Network, g *Grads, batchSize int) {
	if batchSize <= 0 {
		return
	}
	s.ensureState(n)
	inv := 1 / float64(batchSize)
	if s.ClipNorm > 0 {
		var sq float64
		for l := range g.Weights {
			sq += mat.Dot(g.Weights[l].Data, g.Weights[l].Data)
			sq += mat.Dot(g.Biases[l], g.Biases[l])
		}
		if norm := math.Sqrt(sq) * inv; norm > s.ClipNorm {
			inv *= s.ClipNorm / norm
		}
	}
	for l := range n.Weights {
		stepSlice(n.Weights[l].Data, g.Weights[l].Data, s.velW[l].Data, s.LR, s.Momentum, s.WeightDecay, inv)
		stepSlice(n.Biases[l], g.Biases[l], s.velB[l], s.LR, s.Momentum, 0, inv)
	}
}

func stepSlice(param, grad, vel []float64, lr, momentum, decay, inv float64) {
	mat.SGDStep(param, grad, vel, lr, momentum, decay, inv)
}

// Reset implements Optimizer.
func (s *SGD) Reset() {
	s.velW = nil
	s.velB = nil
}

// Adam implements the Adam optimizer. The fine-tuning loops of fine-grained
// noisy label detection converge in very few epochs with Adam, which is how
// the reproduction keeps per-task process time low while matching the
// paper's "small amount of fine-tuning" claim.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t  int
	mW []*mat.Matrix
	vW []*mat.Matrix
	mB [][]float64
	vB [][]float64
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

func (a *Adam) ensureState(n *Network) {
	if a.mW != nil {
		return
	}
	for l, w := range n.Weights {
		a.mW = append(a.mW, mat.NewMatrix(w.Rows, w.Cols))
		a.vW = append(a.vW, mat.NewMatrix(w.Rows, w.Cols))
		a.mB = append(a.mB, make([]float64, len(n.Biases[l])))
		a.vB = append(a.vB, make([]float64, len(n.Biases[l])))
	}
}

// Step implements Optimizer.
func (a *Adam) Step(n *Network, g *Grads, batchSize int) {
	if batchSize <= 0 {
		return
	}
	a.ensureState(n)
	a.t++
	inv := 1 / float64(batchSize)
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for l := range n.Weights {
		a.stepSlice(n.Weights[l].Data, g.Weights[l].Data, a.mW[l].Data, a.vW[l].Data, inv, c1, c2)
		a.stepSlice(n.Biases[l], g.Biases[l], a.mB[l], a.vB[l], inv, c1, c2)
	}
}

func (a *Adam) stepSlice(param, grad, m, v []float64, inv, c1, c2 float64) {
	for i := range param {
		d := grad[i] * inv
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*d
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*d*d
		mHat := m[i] / c1
		vHat := v[i] / c2
		param[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() {
	a.t = 0
	a.mW, a.vW, a.mB, a.vB = nil, nil, nil, nil
}
