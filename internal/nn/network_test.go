package nn

import (
	"math"
	"testing"
	"testing/quick"

	"enld/internal/mat"
)

func newTestNet(t *testing.T, sizes ...int) *Network {
	t.Helper()
	return NewNetwork(sizes, mat.NewRNG(1))
}

func TestNetworkShapes(t *testing.T) {
	n := newTestNet(t, 5, 8, 6, 3)
	if n.InputDim() != 5 {
		t.Errorf("InputDim = %d", n.InputDim())
	}
	if n.Classes() != 3 {
		t.Errorf("Classes = %d", n.Classes())
	}
	if n.FeatureDim() != 6 {
		t.Errorf("FeatureDim = %d", n.FeatureDim())
	}
	wantParams := 5*8 + 8 + 8*6 + 6 + 6*3 + 3
	if n.NumParams() != wantParams {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), wantParams)
	}
}

func TestNewNetworkPanics(t *testing.T) {
	for _, sizes := range [][]int{{3}, {}, {3, 0, 2}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNetwork(%v) did not panic", sizes)
				}
			}()
			NewNetwork(sizes, mat.NewRNG(1))
		}()
	}
}

func TestConfidencesIsDistribution(t *testing.T) {
	n := newTestNet(t, 4, 6, 3)
	rng := mat.NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		x := rng.NormVec(make([]float64, 4), 0, 1)
		p := n.Confidences(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("confidence out of range: %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("confidences sum to %v", sum)
		}
	}
}

func TestPredictMatchesConfidences(t *testing.T) {
	n := newTestNet(t, 4, 5, 3)
	rng := mat.NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		x := rng.NormVec(make([]float64, 4), 0, 1)
		if n.Predict(x) != mat.ArgMax(n.Confidences(x)) {
			t.Fatal("Predict disagrees with argmax of Confidences")
		}
	}
}

func TestFeaturesNonNegative(t *testing.T) {
	// Features are post-ReLU activations, so they must be >= 0.
	n := newTestNet(t, 4, 7, 3)
	rng := mat.NewRNG(4)
	for trial := 0; trial < 20; trial++ {
		x := rng.NormVec(make([]float64, 4), 0, 1)
		f := n.Features(x)
		if len(f) != n.FeatureDim() {
			t.Fatalf("feature length %d", len(f))
		}
		for _, v := range f {
			if v < 0 {
				t.Fatalf("negative feature: %v", f)
			}
		}
	}
}

func TestFeaturesIntoMatchesFeatures(t *testing.T) {
	n := newTestNet(t, 4, 7, 3)
	x := mat.NewRNG(5).NormVec(make([]float64, 4), 0, 1)
	a := n.Features(x)
	b := n.FeaturesInto(make([]float64, n.FeatureDim()), x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FeaturesInto differs from Features")
		}
	}
}

func TestConfidencesIntoMatches(t *testing.T) {
	n := newTestNet(t, 4, 7, 3)
	x := mat.NewRNG(6).NormVec(make([]float64, 4), 0, 1)
	a := n.Confidences(x)
	b := n.ConfidencesInto(make([]float64, 3), x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ConfidencesInto differs from Confidences")
		}
	}
}

func TestLossPositiveAndConsistent(t *testing.T) {
	n := newTestNet(t, 3, 4, 2)
	x := []float64{0.5, -0.2, 0.1}
	for label := 0; label < 2; label++ {
		loss := n.Loss(x, OneHot(label, 2))
		if loss <= 0 {
			t.Fatalf("cross-entropy loss %v not positive", loss)
		}
		// loss == -log(p[label])
		p := n.Confidences(x)
		if math.Abs(loss-(-math.Log(p[label]))) > 1e-9 {
			t.Fatalf("Loss=%v, -log p=%v", loss, -math.Log(p[label]))
		}
	}
}

// TestGradientCheck verifies Backward against numerical differentiation —
// the canonical correctness test for a backprop implementation.
func TestGradientCheck(t *testing.T) {
	n := newTestNet(t, 3, 5, 4, 3)
	rng := mat.NewRNG(7)
	x := rng.NormVec(make([]float64, 3), 0, 1)
	target := []float64{0.2, 0.5, 0.3} // soft target exercises the general path

	g := n.NewGrads()
	n.Backward(g, x, target)

	const h = 1e-6
	checkParam := func(get func() *float64, analytic float64, where string) {
		p := get()
		orig := *p
		*p = orig + h
		lp := n.Loss(x, target)
		*p = orig - h
		lm := n.Loss(x, target)
		*p = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s: analytic %v, numeric %v", where, analytic, numeric)
		}
	}
	for l := range n.Weights {
		w := n.Weights[l]
		// Sample a few entries per layer rather than every parameter.
		for trial := 0; trial < 8; trial++ {
			i, j := rng.Intn(w.Rows), rng.Intn(w.Cols)
			idx := i*w.Cols + j
			checkParam(func() *float64 { return &w.Data[idx] }, g.Weights[l].Data[idx], "weight")
		}
		for trial := 0; trial < 4; trial++ {
			i := rng.Intn(len(n.Biases[l]))
			checkParam(func() *float64 { return &n.Biases[l][i] }, g.Biases[l][i], "bias")
		}
	}
}

func TestBackwardReturnsLoss(t *testing.T) {
	n := newTestNet(t, 3, 4, 2)
	x := []float64{1, 0, -1}
	target := OneHot(1, 2)
	g := n.NewGrads()
	if got, want := n.Backward(g, x, target), n.Loss(x, target); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Backward loss %v != Loss %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := newTestNet(t, 3, 4, 2)
	c := n.Clone()
	x := []float64{1, 2, 3}
	before := n.Confidences(x)
	// Mutate the clone; original must be unaffected.
	c.Weights[0].Data[0] += 10
	after := n.Confidences(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Clone shares parameters with original")
		}
	}
}

func TestCopyFrom(t *testing.T) {
	a := newTestNet(t, 3, 4, 2)
	b := NewNetwork([]int{3, 4, 2}, mat.NewRNG(99))
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	pa, pb := a.Confidences(x), b.Confidences(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("CopyFrom did not copy parameters")
		}
	}
	c := NewNetwork([]int{3, 5, 2}, mat.NewRNG(1))
	if err := c.CopyFrom(a); err == nil {
		t.Fatal("CopyFrom accepted architecture mismatch")
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(2, 4)
	if v[2] != 1 || mat.Sum(v) != 1 {
		t.Fatalf("OneHot = %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OneHot out of range did not panic")
		}
	}()
	OneHot(4, 4)
}

// Property: loss is invariant under cloning and confidences deterministic.
func TestDeterministicForward(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mat.NewRNG(seed)
		n := NewNetwork([]int{4, 6, 3}, rng)
		x := rng.NormVec(make([]float64, 4), 0, 1)
		a := n.Confidences(x)
		b := n.Clone().Confidences(x)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateMatchesSeparateCalls(t *testing.T) {
	n := newTestNet(t, 5, 7, 4)
	rng := mat.NewRNG(70)
	for trial := 0; trial < 20; trial++ {
		x := rng.NormVec(make([]float64, 5), 0, 1)
		conf, feat := n.Evaluate(x)
		wantConf := n.Confidences(x)
		wantFeat := n.Features(x)
		for i := range conf {
			if conf[i] != wantConf[i] {
				t.Fatal("Evaluate confidences differ")
			}
		}
		for i := range feat {
			if feat[i] != wantFeat[i] {
				t.Fatal("Evaluate features differ")
			}
		}
	}
}
