package nn

import (
	"fmt"
	"testing"

	"enld/internal/mat"
)

// The differential tests in this file pin the tentpole contract of the blocked
// GEMM batch kernels: every batched pass — forward, loss, backward, and full
// training — is bit-identical to the per-sample path it replaced, across
// ragged batch sizes and worker counts.

// diffNet builds a three-hidden-layer network whose layer widths are not
// multiples of the GEMM register tile, so every pass exercises edge kernels.
func diffNet(seed uint64) *Network {
	return NewNetwork([]int{6, 13, 9, 5}, mat.NewRNG(seed))
}

func diffInputs(n int, seed uint64) [][]float64 {
	rng := mat.NewRNG(seed)
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = rng.NormVec(make([]float64, 6), 0, 1)
	}
	return xs
}

// TestForwardBatchRaggedBitIdentical reuses one BatchScratch across batch
// sizes 1, 7, 64 and the full input set (growing and shrinking the views) and
// checks confidences, features and predictions against per-sample calls.
func TestForwardBatchRaggedBitIdentical(t *testing.T) {
	net := diffNet(81)
	xs := diffInputs(100, 82)
	var s BatchScratch
	for _, bs := range []int{1, 7, 64, len(xs)} {
		batch := xs[:bs]
		net.ForwardBatch(&s, batch)
		logits, feats := s.Logits(), s.Features()
		if logits.Rows != bs || feats.Rows != bs {
			t.Fatalf("batch=%d: scratch rows %d/%d", bs, logits.Rows, feats.Rows)
		}
		conf := make([]float64, net.Classes())
		for r, x := range batch {
			mat.Softmax(conf, logits.Row(r))
			wantC, wantF := net.Evaluate(x)
			for j := range wantC {
				if conf[j] != wantC[j] {
					t.Fatalf("batch=%d row %d: confidence[%d] %v != %v", bs, r, j, conf[j], wantC[j])
				}
			}
			for j := range wantF {
				if feats.Row(r)[j] != wantF[j] {
					t.Fatalf("batch=%d row %d: feature[%d] %v != %v", bs, r, j, feats.Row(r)[j], wantF[j])
				}
			}
			if mat.ArgMax(logits.Row(r)) != net.Predict(x) {
				t.Fatalf("batch=%d row %d: prediction mismatch", bs, r)
			}
		}
	}
}

// TestLossBatchBitIdentical checks batched cross-entropy losses against
// per-sample Loss calls at ragged batch sizes and several worker counts.
func TestLossBatchBitIdentical(t *testing.T) {
	net := diffNet(83)
	xs := diffInputs(90, 84)
	rng := mat.NewRNG(85)
	targets := make([][]float64, len(xs))
	for i := range targets {
		targets[i] = OneHot(rng.Intn(net.Classes()), net.Classes())
	}
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = net.Loss(x, targets[i])
	}
	var s BatchScratch
	out := make([]float64, len(xs))
	for _, bs := range []int{1, 7, 64, len(xs)} {
		net.LossBatch(&s, xs[:bs], targets[:bs], out[:bs])
		for i := 0; i < bs; i++ {
			if out[i] != want[i] {
				t.Fatalf("batch=%d: loss[%d] %v != %v", bs, i, out[i], want[i])
			}
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got := net.LossesBatch(xs, targets, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: loss[%d] %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestBackwardBatchBitIdentical checks one batched backward pass against the
// same samples pushed through per-sample Backward calls in row order: summed
// loss and every gradient entry must match bit for bit.
func TestBackwardBatchBitIdentical(t *testing.T) {
	net := diffNet(86)
	rng := mat.NewRNG(87)
	for _, bs := range []int{1, 7, 8, 64} {
		xs := diffInputs(bs, 88+uint64(bs))
		targets := make([][]float64, bs)
		for i := range targets {
			targets[i] = OneHot(rng.Intn(net.Classes()), net.Classes())
		}
		ref := net.Replica()
		gWant := net.NewGrads()
		var lossWant float64
		for i := range xs {
			lossWant += ref.Backward(gWant, xs[i], targets[i])
		}
		var s BatchScratch
		gGot := net.NewGrads()
		lossGot := net.BackwardBatch(&s, gGot, xs, targets)
		if lossGot != lossWant {
			t.Fatalf("batch=%d: loss %v != %v", bs, lossGot, lossWant)
		}
		for l := range gWant.Weights {
			for i, v := range gWant.Weights[l].Data {
				if gGot.Weights[l].Data[i] != v {
					t.Fatalf("batch=%d: weight grad layer %d index %d: %v != %v",
						bs, l, i, gGot.Weights[l].Data[i], v)
				}
			}
			for i, v := range gWant.Biases[l] {
				if gGot.Biases[l][i] != v {
					t.Fatalf("batch=%d: bias grad layer %d index %d differs", bs, l, i)
				}
			}
		}
	}
}

// trainDiff trains a fresh identically-seeded network through either the
// batched or the per-sample reference gradient path.
func trainDiff(t *testing.T, perSample bool, workers, batchSize int, mixup bool) *Network {
	t.Helper()
	examples := twoBlobs(60, 91)
	net := NewNetwork([]int{2, 13, 9, 2}, mat.NewRNG(92))
	tr := NewTrainer(net, NewSGD(0.05, 0.9, 1e-4))
	tr.perSample = perSample
	_, err := tr.Run(examples, TrainConfig{
		Epochs: 3, BatchSize: batchSize, Mixup: mixup, MixupAlpha: 0.2,
		Seed: 93, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestTrainerBatchedMatchesPerSampleReference is the training-side tentpole
// differential test: the batched gradient path must produce bit-identical
// weights to the per-sample reference path across ragged batch sizes, worker
// counts 1/2/8, with and without mixup.
func TestTrainerBatchedMatchesPerSampleReference(t *testing.T) {
	for _, mixup := range []bool{false, true} {
		for _, batchSize := range []int{1, 7, 64, 120} {
			ref := trainDiff(t, true, 1, batchSize, mixup)
			for _, workers := range []int{1, 2, 8} {
				got := trainDiff(t, false, workers, batchSize, mixup)
				label := "plain"
				if mixup {
					label = "mixup"
				}
				label = fmt.Sprintf("%s/batch=%d/workers=%d", label, batchSize, workers)
				sameParams(t, label, ref, got)
			}
		}
	}
}

// TestMeanLossAccuracyBatchedMatchesPerSample pins the batched MeanLoss and
// Accuracy helpers to the per-sample definitions.
func TestMeanLossAccuracyBatchedMatchesPerSample(t *testing.T) {
	examples := twoBlobs(70, 95) // 140 samples: crosses the batchChunk boundary
	net := NewNetwork([]int{2, 9, 2}, mat.NewRNG(96))
	var wantLoss float64
	correct := 0
	for _, ex := range examples {
		wantLoss += net.Loss(ex.X, ex.Target)
		if net.Predict(ex.X) == mat.ArgMax(ex.Target) {
			correct++
		}
	}
	wantLoss /= float64(len(examples))
	if got := MeanLoss(net, examples); got != wantLoss {
		t.Fatalf("MeanLoss %v != %v", got, wantLoss)
	}
	wantAcc := float64(correct) / float64(len(examples))
	if got := Accuracy(net, examples); got != wantAcc {
		t.Fatalf("Accuracy %v != %v", got, wantAcc)
	}
}

// TestForwardBatchInputLengthPanics pins the batch input validation.
func TestForwardBatchInputLengthPanics(t *testing.T) {
	net := diffNet(97)
	var s BatchScratch
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardBatch accepted a malformed input row")
		}
	}()
	net.ForwardBatch(&s, [][]float64{make([]float64, 3)})
}
