package nn

import (
	"bytes"
	"testing"

	"enld/internal/mat"
)

// FuzzLoadSnapshot throws arbitrary bytes — seeded with valid snapshots and
// near-miss mutations of them — at Load. Load must never panic, and whenever
// it accepts an input the resulting network must be structurally sound
// (positive layer sizes, finite-or-not but correctly shaped parameters) and
// must survive a save/load round trip.
func FuzzLoadSnapshot(f *testing.F) {
	for _, sizes := range [][]int{{2, 3, 2}, {1, 1}, {4, 8, 8, 3}} {
		var buf bytes.Buffer
		if err := NewNetwork(sizes, mat.NewRNG(7)).Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())

		// Near-miss seeds: valid header, damaged interior.
		b := append([]byte(nil), buf.Bytes()...)
		b[len(b)/2] ^= 0x40
		f.Add(b)
		f.Add(b[:len(b)-7])
	}
	f.Add([]byte{})
	f.Add([]byte("ENLDNN"))
	f.Add([]byte("not a snapshot at all, just text"))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(net.Weights) == 0 || len(net.Biases) != len(net.Weights) {
			t.Fatalf("accepted snapshot produced malformed network: %d weight layers, %d bias layers",
				len(net.Weights), len(net.Biases))
		}
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("accepted network failed to re-save: %v", err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-saved network failed to load: %v", err)
		}
	})
}
