package nn

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"enld/internal/mat"
	"enld/internal/obs"
	"enld/internal/parallel"
)

// Example is one training example: an input vector and a target distribution
// over classes. Hard labels are encoded one-hot with OneHot; mixup produces
// two-hot soft targets.
type Example struct {
	X      []float64
	Target []float64
}

// OneHot returns a one-hot target vector of the given length.
// It panics if label is out of range.
func OneHot(label, classes int) []float64 {
	if label < 0 || label >= classes {
		panic("nn: OneHot label out of range")
	}
	t := make([]float64, classes)
	t[label] = 1
	return t
}

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// Mixup enables mixup augmentation (Eq. 1–2) with Beta(MixupAlpha,
	// MixupAlpha) mixing coefficients. The paper fixes α = 0.2.
	Mixup      bool
	MixupAlpha float64
	// Seed drives the shuffle order and mixup draws.
	Seed uint64
	// Workers bounds the data-parallel gradient workers per batch
	// (0 = all cores). Trained weights are bit-identical at every worker
	// count: gradients accumulate over a fixed chunk partition of each batch
	// and reduce in chunk order, and all randomness (shuffle, mixup draws)
	// is consumed sequentially outside the parallel section.
	Workers int
	// Watchdog enables the numerical-health watchdog with checkpoint
	// rollback (see WatchdogConfig). The zero value disables it and leaves
	// Run's floating-point stream untouched.
	Watchdog WatchdogConfig
	// AfterEpoch, when set, is called at the end of each healthy epoch with
	// the epoch index and the live network — after the watchdog's health
	// evaluation and checkpoint capture, so anything it perturbs is caught
	// by the next epoch's checks and rolled back to the clean checkpoint.
	// Fault-injection tests use it to corrupt state mid-training; it must be
	// a deterministic function of its arguments for the rollback determinism
	// contract to hold.
	AfterEpoch func(epoch int, net *Network)
}

// DefaultMixupAlpha is the paper's Beta-distribution parameter for mixup.
const DefaultMixupAlpha = 0.2

// gradChunk is the fixed per-batch gradient chunk size. The partition of a
// batch into gradChunk-sized chunks depends only on the batch length, so the
// chunk-order reduction yields the same floating-point sum no matter how
// many workers processed the chunks. The chunk is also the inner dimension of
// the weight-gradient GemmTN, so it trades register-tile amortization against
// intra-batch parallelism: 16 keeps two chunks per default 32-sample batch
// while giving each GEMM twice the accumulation depth of the previous 8.
const gradChunk = 16

// Trainer runs mini-batch training of a Network with a given optimizer.
type Trainer struct {
	Net *Network
	Opt Optimizer

	// Obs, when set, receives training metrics: epoch/batch duration and
	// batch-loss histograms plus watchdog trip/rollback/checkpoint counters.
	// Nil leaves the hot path untouched — no handles, no clock reads.
	Obs *obs.Registry

	grads *Grads

	// Data-parallel scratch, (re)built per Run: one batch-wide BatchScratch
	// (the backward pass itself fans rows out over the pool), packed
	// batch-wide input/target buffers, one gradient accumulator and loss cell
	// per batch chunk, and the per-layer Wᵀ panels repacked each batch.
	// scratchNet tracks which network the cached scratch belongs to so a
	// swapped Net rebuilds it.
	scratchNet *Network
	bscratch   *BatchScratch
	batchXs    [][]float64 // row pointers of the current batch
	batchTs    [][]float64
	mixXB      *mat.Matrix // batch-wide packed mixup inputs/targets
	mixTB      *mat.Matrix
	panels     []mat.Matrix
	chunkGrads []*Grads
	chunkLoss  []float64
	mixPartner []int
	mixLambda  []float64

	// perSample switches the chunk workers back to per-sample Backward calls
	// on replica networks — the reference path the differential tests compare
	// the batched kernels against.
	perSample bool
	replicas  []*Network
	mixX      [][]float64 // per-worker single-sample mixup buffers
	mixT      [][]float64

	// wstats reports what the watchdog did during the last Run.
	wstats WatchdogStats

	// obsm caches the metric handles resolved from Obs; obsReg tracks which
	// registry they belong to so a swapped Obs re-interns them.
	obsm   *trainerObs
	obsReg *obs.Registry
}

// trainerObs holds the trainer's pre-interned metric handles, so the batch
// loop does no registry lookups.
type trainerObs struct {
	epochSeconds *obs.Histogram
	batchSeconds *obs.Histogram
	batchLoss    *obs.Histogram
	trips        *obs.Counter
	rollbacks    *obs.Counter
	checkpoints  *obs.Counter
}

// lossBuckets spans the cross-entropy losses seen in practice: from
// near-converged (≤0.01 nats/sample) to diverging (>10).
var lossBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ensureObs resolves the metric handles for the current Obs registry.
func (t *Trainer) ensureObs() {
	if t.Obs == nil {
		t.obsm, t.obsReg = nil, nil
		return
	}
	if t.obsReg == t.Obs {
		return
	}
	t.obsm = &trainerObs{
		epochSeconds: t.Obs.Histogram("enld_train_epoch_seconds",
			"Wall-clock duration of one training epoch.", obs.DefBuckets),
		batchSeconds: t.Obs.Histogram("enld_train_batch_seconds",
			"Wall-clock duration of one mini-batch update.", obs.DefBuckets),
		batchLoss: t.Obs.Histogram("enld_train_batch_loss",
			"Mean per-sample cross-entropy loss of each mini-batch.", lossBuckets),
		trips: t.Obs.Counter("enld_train_watchdog_trips_total",
			"Failed numerical-health checks during training."),
		rollbacks: t.Obs.Counter("enld_train_rollbacks_total",
			"Checkpoint rollbacks performed by the training watchdog."),
		checkpoints: t.Obs.Counter("enld_train_checkpoints_total",
			"Verified checkpoints captured by the training watchdog."),
	}
	t.obsReg = t.Obs
}

// NewTrainer returns a trainer bound to net and opt.
func NewTrainer(net *Network, opt Optimizer) *Trainer {
	return &Trainer{
		Net:   net,
		Opt:   opt,
		grads: net.NewGrads(),
	}
}

// EpochStats reports what happened during one pass over the data.
type EpochStats struct {
	MeanLoss     float64
	SamplesSeen  int
	BatchUpdates int
}

// Run trains for cfg.Epochs passes over examples and returns per-epoch stats.
// It returns an error if the example set is empty or malformed.
func (t *Trainer) Run(examples []Example, cfg TrainConfig) ([]EpochStats, error) {
	if len(examples) == 0 {
		return nil, errors.New("nn: Run with no examples")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	alpha := cfg.MixupAlpha
	if alpha <= 0 {
		alpha = DefaultMixupAlpha
	}
	for i, ex := range examples {
		if len(ex.X) != t.Net.InputDim() || len(ex.Target) != t.Net.Classes() {
			return nil, errors.New("nn: malformed example at index " + strconv.Itoa(i))
		}
	}
	t.ensureObs()
	pool := parallel.New(cfg.Workers).Instrument(t.Obs, "train")
	maxBatch := cfg.BatchSize
	if maxBatch > len(examples) {
		maxBatch = len(examples)
	}
	t.ensureScratch(pool.Workers(), maxBatch)
	if cfg.Watchdog.Enabled {
		return t.runWatchdog(examples, cfg, alpha, pool)
	}
	t.wstats = WatchdogStats{}
	rng := mat.NewRNG(cfg.Seed)
	stats := make([]EpochStats, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		var epochStart time.Time
		if t.obsm != nil {
			epochStart = time.Now()
		}
		st, _ := t.epoch(examples, cfg, alpha, rng, pool, nil, e)
		if t.obsm != nil {
			t.obsm.epochSeconds.Observe(time.Since(epochStart).Seconds())
		}
		if cfg.AfterEpoch != nil {
			cfg.AfterEpoch(e, t.Net)
		}
		stats = append(stats, st)
	}
	return stats, nil
}

// WatchdogStats reports what the watchdog did during the last Run. It is
// zero when the last Run had the watchdog disabled.
func (t *Trainer) WatchdogStats() WatchdogStats { return t.wstats }

// runWatchdog is Run with the numerical-health watchdog engaged. The epoch
// loop is wrapped in a detect → rollback → decay-LR → retry cycle:
//
//   - every batch, the summed chunk loss (the BackwardBatch reduction
//     output) is checked for NaN/±Inf, and at the configured cadence the
//     reduced gradient and the updated weights are scanned;
//   - after each healthy epoch (at the checkpoint cadence) the parameters
//     and RNG state go into a checksummed ring of good checkpoints;
//   - on a failed check the newest verified checkpoint is restored, the
//     optimizer state is reset and its learning rate decayed, and training
//     resumes from the checkpoint's epoch — up to MaxRollbacks times before
//     Run gives up and returns the pending ErrUnhealthy.
//
// Recovery is deterministic: the checkpoint carries the RNG state, health
// decisions depend only on chunk-ordered reductions (bit-identical at every
// worker count), so the same seed yields the same recovery sequence and the
// same final weights no matter how many workers ran the batches.
func (t *Trainer) runWatchdog(examples []Example, cfg TrainConfig, alpha float64, pool *parallel.Pool) ([]EpochStats, error) {
	wd := cfg.Watchdog.normalized()
	h := newHealth(wd.Health)
	ring := newCheckpointRing(wd.RingSize)
	rng := mat.NewRNG(cfg.Seed)
	t.wstats = WatchdogStats{LastUnhealthyEpoch: -1}

	// The initial checkpoint (epoch -1) guarantees a rollback target even
	// when training goes bad before the first epoch completes.
	ring.capture(t.Net, *rng, -1)
	t.wstats.CheckpointsTaken++
	if t.obsm != nil {
		t.obsm.checkpoints.Inc()
	}

	stats := make([]EpochStats, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		var epochStart time.Time
		if t.obsm != nil {
			epochStart = time.Now()
		}
		st, herr := t.epoch(examples, cfg, alpha, rng, pool, h, e)
		if herr == nil {
			herr = h.observeEpoch(e, st.MeanLoss, t.Net)
		}
		if t.obsm != nil {
			t.obsm.epochSeconds.Observe(time.Since(epochStart).Seconds())
		}
		t.wstats.HealthChecks = h.checks
		if herr != nil {
			t.wstats.LastUnhealthyEpoch = e
			if t.obsm != nil {
				t.obsm.trips.Inc()
			}
			if t.wstats.Rollbacks >= wd.MaxRollbacks {
				return stats, fmt.Errorf("nn: rollback budget (%d) exhausted: %w", wd.MaxRollbacks, herr)
			}
			ck, fails := ring.restore(t.Net)
			t.wstats.VerifyFailures += fails
			if ck == nil {
				return stats, fmt.Errorf("nn: no verified checkpoint to roll back to: %w", herr)
			}
			t.wstats.Rollbacks++
			if t.obsm != nil {
				t.obsm.rollbacks.Inc()
			}
			t.Opt.Reset()
			if s, ok := t.Opt.(LRScaler); ok {
				s.ScaleLR(wd.LRDecay)
			}
			*rng = ck.rng
			stats = stats[:ck.epoch+1]
			e = ck.epoch
			continue
		}
		stats = append(stats, st)
		if (e+1)%wd.CheckpointEvery == 0 {
			ring.capture(t.Net, *rng, e)
			t.wstats.CheckpointsTaken++
			if t.obsm != nil {
				t.obsm.checkpoints.Inc()
			}
		}
		// The hook runs after the checkpoint is captured, so any state it
		// perturbs (fault injection in tests, external weight surgery) is
		// caught by the next epoch's checks and rolled back to the clean,
		// training-produced state.
		if cfg.AfterEpoch != nil {
			cfg.AfterEpoch(e, t.Net)
		}
	}
	return stats, nil
}

// ensureScratch sizes the batch-wide scratch and per-chunk accumulators
// for batches up to maxBatch samples. Scratch is cached across Run calls (the
// fine-grained NLD loop calls Run once per epoch) and invalidated when Net
// is swapped.
func (t *Trainer) ensureScratch(workers, maxBatch int) {
	if t.scratchNet != t.Net {
		t.bscratch, t.batchXs, t.batchTs, t.mixXB, t.mixTB = nil, nil, nil, nil, nil
		t.panels = nil
		t.replicas, t.chunkGrads, t.mixX, t.mixT = nil, nil, nil, nil
		t.scratchNet = t.Net
	}
	if t.bscratch == nil {
		t.bscratch = &BatchScratch{}
	}
	if len(t.batchXs) < maxBatch {
		t.batchXs = make([][]float64, maxBatch)
		t.batchTs = make([][]float64, maxBatch)
		t.mixXB = mat.NewMatrix(maxBatch, t.Net.InputDim())
		t.mixTB = mat.NewMatrix(maxBatch, t.Net.Classes())
	}
	if t.perSample {
		if len(t.replicas) == 0 {
			// Worker 0 is the network itself, so the single-worker path runs
			// on exactly the buffers a sequential trainer would use.
			t.replicas = append(t.replicas, t.Net)
		}
		for len(t.replicas) < workers {
			t.replicas = append(t.replicas, t.Net.Replica())
		}
		for len(t.mixX) < workers {
			t.mixX = append(t.mixX, make([]float64, t.Net.InputDim()))
			t.mixT = append(t.mixT, make([]float64, t.Net.Classes()))
		}
	}
	maxChunks := (maxBatch + gradChunk - 1) / gradChunk
	for len(t.chunkGrads) < maxChunks {
		t.chunkGrads = append(t.chunkGrads, t.Net.NewGrads())
	}
	if len(t.chunkLoss) < maxChunks {
		t.chunkLoss = make([]float64, maxChunks)
	}
	if len(t.mixPartner) < maxBatch {
		t.mixPartner = make([]int, maxBatch)
		t.mixLambda = make([]float64, maxBatch)
	}
}

// epoch runs one pass over the data. Each batch runs one batch-wide
// backward pass (backwardBatchChunked): the forward layers fan output rows
// out over the pool against per-batch packed Wᵀ panels, and the gradient
// accumulates per fixed gradChunk-sized chunk into per-chunk buffers that
// are then reduced in index order. The result is bit-identical to a
// one-worker per-sample run: the batched kernels preserve the per-sample
// accumulation order within a chunk (see backwardBatchChunked), the chunk
// partition and reduction order never depend on the worker count, and the
// RNG (shuffle and mixup draws) is consumed sequentially before the
// parallel section.
//
// With a non-nil health checker, each batch's reduced loss is validated and
// the reduced gradient and updated weights are scanned at the configured
// cadence; the first failed check aborts the epoch with a HealthError.
// Health decisions read only chunk-ordered reductions, so they are
// bit-identical at every worker count.
func (t *Trainer) epoch(examples []Example, cfg TrainConfig, alpha float64, rng *mat.RNG, pool *parallel.Pool, h *health, e int) (EpochStats, error) {
	order := rng.Perm(len(examples))
	var st EpochStats
	var lossSum float64
	for start := 0; start < len(order); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(order) {
			end = len(order)
		}
		batch := order[start:end]
		var batchStart time.Time
		if t.obsm != nil {
			batchStart = time.Now()
		}
		if cfg.Mixup {
			// Mix with a uniformly chosen partner (Eq. 1–2):
			//   x̂ = λ·x_i + (1−λ)·x_j,  ŷ = λ·y_i + (1−λ)·y_j.
			for i := range batch {
				t.mixPartner[i] = order[rng.Intn(len(order))]
				t.mixLambda[i] = rng.Beta(alpha, alpha)
			}
		}
		nChunks := (len(batch) + gradChunk - 1) / gradChunk
		if t.perSample {
			pool.ForEachChunk(len(batch), gradChunk, func(worker, lo, hi int) {
				c := lo / gradChunk
				g := t.chunkGrads[c]
				g.Zero()
				t.chunkLoss[c] = t.perSampleChunk(g, examples, batch, cfg.Mixup, worker, lo, hi)
			})
		} else {
			// Pack the batch's row pointers (mixing into the batch-wide mixup
			// buffers) sequentially, then run one batch-wide backward pass —
			// the pass itself fans rows and gradient chunks out over the pool.
			xs := t.batchXs[:len(batch)]
			ts := t.batchTs[:len(batch)]
			for i, idx := range batch {
				ex := examples[idx]
				if cfg.Mixup {
					partner := examples[t.mixPartner[i]]
					mx, mt := t.mixXB.Row(i), t.mixTB.Row(i)
					mat.Lerp(mx, ex.X, partner.X, t.mixLambda[i])
					mat.Lerp(mt, ex.Target, partner.Target, t.mixLambda[i])
					xs[i], ts[i] = mx, mt
				} else {
					xs[i], ts[i] = ex.X, ex.Target
				}
			}
			t.Net.packPanels(&t.panels)
			t.Net.backwardBatchChunked(t.bscratch, t.chunkGrads[:nChunks], t.chunkLoss[:nChunks], xs, ts, gradChunk, t.panels, pool, true)
		}
		t.grads.Zero()
		var batchLoss float64
		for c := 0; c < nChunks; c++ {
			t.grads.Add(t.chunkGrads[c])
			batchLoss += t.chunkLoss[c]
		}
		lossSum += batchLoss
		st.SamplesSeen += len(batch)
		t.Opt.Step(t.Net, t.grads, len(batch))
		st.BatchUpdates++
		if t.obsm != nil {
			t.obsm.batchSeconds.Observe(time.Since(batchStart).Seconds())
			t.obsm.batchLoss.Observe(batchLoss / float64(len(batch)))
		}
		if h != nil {
			if err := h.checkBatch(e, st.BatchUpdates, batchLoss, t.grads, t.Net); err != nil {
				return st, err
			}
		}
	}
	if st.SamplesSeen > 0 {
		st.MeanLoss = lossSum / float64(st.SamplesSeen)
	}
	return st, nil
}

// perSampleChunk is the pre-batching reference path: per-sample Backward
// calls on a replica network, accumulating the chunk's gradient and loss one
// sample at a time. The differential tests flip Trainer.perSample to prove
// the batched path reproduces it bit for bit.
func (t *Trainer) perSampleChunk(g *Grads, examples []Example, batch []int, mixup bool, worker, lo, hi int) float64 {
	net := t.replicas[worker]
	var loss float64
	for i := lo; i < hi; i++ {
		ex := examples[batch[i]]
		if mixup {
			partner := examples[t.mixPartner[i]]
			mat.Lerp(t.mixX[worker], ex.X, partner.X, t.mixLambda[i])
			mat.Lerp(t.mixT[worker], ex.Target, partner.Target, t.mixLambda[i])
			loss += net.Backward(g, t.mixX[worker], t.mixT[worker])
		} else {
			loss += net.Backward(g, ex.X, ex.Target)
		}
	}
	return loss
}

// MeanLoss evaluates the average cross-entropy loss of net on examples
// without updating parameters. Losses are computed in batched chunks and
// summed in input order, bit-identical to a per-sample loop.
func MeanLoss(net *Network, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	var s BatchScratch
	xs := make([][]float64, len(examples))
	ts := make([][]float64, len(examples))
	for i, ex := range examples {
		xs[i], ts[i] = ex.X, ex.Target
	}
	losses := make([]float64, batchChunk)
	var sum float64
	for lo := 0; lo < len(examples); lo += batchChunk {
		hi := min(lo+batchChunk, len(examples))
		net.LossBatch(&s, xs[lo:hi], ts[lo:hi], losses[:hi-lo])
		for _, l := range losses[:hi-lo] {
			sum += l
		}
	}
	return sum / float64(len(examples))
}

// Accuracy returns the fraction of examples whose predicted class matches
// the argmax of their target distribution.
func Accuracy(net *Network, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	var s BatchScratch
	xs := make([][]float64, len(examples))
	for i, ex := range examples {
		xs[i] = ex.X
	}
	correct := 0
	for lo := 0; lo < len(examples); lo += batchChunk {
		hi := min(lo+batchChunk, len(examples))
		net.ForwardBatch(&s, xs[lo:hi])
		logits := s.Logits()
		for r := 0; r < hi-lo; r++ {
			if mat.ArgMax(logits.Row(r)) == mat.ArgMax(examples[lo+r].Target) {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(examples))
}
