package nn

import (
	"errors"
	"strconv"

	"enld/internal/mat"
)

// Example is one training example: an input vector and a target distribution
// over classes. Hard labels are encoded one-hot with OneHot; mixup produces
// two-hot soft targets.
type Example struct {
	X      []float64
	Target []float64
}

// OneHot returns a one-hot target vector of the given length.
// It panics if label is out of range.
func OneHot(label, classes int) []float64 {
	if label < 0 || label >= classes {
		panic("nn: OneHot label out of range")
	}
	t := make([]float64, classes)
	t[label] = 1
	return t
}

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// Mixup enables mixup augmentation (Eq. 1–2) with Beta(MixupAlpha,
	// MixupAlpha) mixing coefficients. The paper fixes α = 0.2.
	Mixup      bool
	MixupAlpha float64
	// Seed drives the shuffle order and mixup draws.
	Seed uint64
}

// DefaultMixupAlpha is the paper's Beta-distribution parameter for mixup.
const DefaultMixupAlpha = 0.2

// Trainer runs mini-batch training of a Network with a given optimizer.
type Trainer struct {
	Net *Network
	Opt Optimizer

	grads *Grads
	mixX  []float64
	mixT  []float64
}

// NewTrainer returns a trainer bound to net and opt.
func NewTrainer(net *Network, opt Optimizer) *Trainer {
	return &Trainer{
		Net:   net,
		Opt:   opt,
		grads: net.NewGrads(),
		mixX:  make([]float64, net.InputDim()),
		mixT:  make([]float64, net.Classes()),
	}
}

// EpochStats reports what happened during one pass over the data.
type EpochStats struct {
	MeanLoss     float64
	SamplesSeen  int
	BatchUpdates int
}

// Run trains for cfg.Epochs passes over examples and returns per-epoch stats.
// It returns an error if the example set is empty or malformed.
func (t *Trainer) Run(examples []Example, cfg TrainConfig) ([]EpochStats, error) {
	if len(examples) == 0 {
		return nil, errors.New("nn: Run with no examples")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	alpha := cfg.MixupAlpha
	if alpha <= 0 {
		alpha = DefaultMixupAlpha
	}
	for i, ex := range examples {
		if len(ex.X) != t.Net.InputDim() || len(ex.Target) != t.Net.Classes() {
			return nil, errors.New("nn: malformed example at index " + strconv.Itoa(i))
		}
	}
	rng := mat.NewRNG(cfg.Seed)
	stats := make([]EpochStats, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		stats = append(stats, t.epoch(examples, cfg, alpha, rng))
	}
	return stats, nil
}

func (t *Trainer) epoch(examples []Example, cfg TrainConfig, alpha float64, rng *mat.RNG) EpochStats {
	order := rng.Perm(len(examples))
	var st EpochStats
	var lossSum float64
	for start := 0; start < len(order); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(order) {
			end = len(order)
		}
		t.grads.Zero()
		for _, idx := range order[start:end] {
			ex := examples[idx]
			if cfg.Mixup {
				// Mix with a uniformly chosen partner (Eq. 1–2):
				//   x̂ = λ·x_i + (1−λ)·x_j,  ŷ = λ·y_i + (1−λ)·y_j.
				partner := examples[order[rng.Intn(len(order))]]
				lambda := rng.Beta(alpha, alpha)
				mat.Lerp(t.mixX, ex.X, partner.X, lambda)
				mat.Lerp(t.mixT, ex.Target, partner.Target, lambda)
				lossSum += t.Net.Backward(t.grads, t.mixX, t.mixT)
			} else {
				lossSum += t.Net.Backward(t.grads, ex.X, ex.Target)
			}
			st.SamplesSeen++
		}
		t.Opt.Step(t.Net, t.grads, end-start)
		st.BatchUpdates++
	}
	if st.SamplesSeen > 0 {
		st.MeanLoss = lossSum / float64(st.SamplesSeen)
	}
	return st
}

// MeanLoss evaluates the average cross-entropy loss of net on examples
// without updating parameters.
func MeanLoss(net *Network, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	var sum float64
	for _, ex := range examples {
		sum += net.Loss(ex.X, ex.Target)
	}
	return sum / float64(len(examples))
}

// Accuracy returns the fraction of examples whose predicted class matches
// the argmax of their target distribution.
func Accuracy(net *Network, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if net.Predict(ex.X) == mat.ArgMax(ex.Target) {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}
