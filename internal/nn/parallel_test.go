package nn

import (
	"testing"

	"enld/internal/mat"
)

// trainWeights trains a fresh, identically seeded network with the given
// worker count and returns the resulting parameters.
func trainWeights(t *testing.T, workers int, mixup bool) *Network {
	t.Helper()
	examples := twoBlobs(60, 21)
	net := NewNetwork([]int{2, 16, 8, 2}, mat.NewRNG(22))
	tr := NewTrainer(net, NewSGD(0.05, 0.9, 1e-4))
	_, err := tr.Run(examples, TrainConfig{
		Epochs: 4, BatchSize: 12, Mixup: mixup, MixupAlpha: 0.2, Seed: 23,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// sameParams asserts two networks hold bitwise-identical parameters.
func sameParams(t *testing.T, label string, a, b *Network) {
	t.Helper()
	for l := range a.Weights {
		for i, v := range a.Weights[l].Data {
			if b.Weights[l].Data[i] != v {
				t.Fatalf("%s: weight layer %d index %d differs: %v vs %v",
					label, l, i, v, b.Weights[l].Data[i])
			}
		}
		for i, v := range a.Biases[l] {
			if b.Biases[l][i] != v {
				t.Fatalf("%s: bias layer %d index %d differs", label, l, i)
			}
		}
	}
}

// TestTrainerParallelBitIdentical is the tentpole differential test: the
// trained weights must be bit-identical across worker counts 1, 2 and 8,
// with and without mixup (mixup exercises the sequential pre-draw of RNG
// values feeding the parallel section).
func TestTrainerParallelBitIdentical(t *testing.T) {
	for _, mixup := range []bool{false, true} {
		seq := trainWeights(t, 1, mixup)
		for _, workers := range []int{2, 8} {
			par := trainWeights(t, workers, mixup)
			label := "plain"
			if mixup {
				label = "mixup"
			}
			sameParams(t, label, seq, par)
		}
	}
}

// TestTrainerParallelStatsIdentical checks the per-epoch stats (loss sums
// reduced in chunk order) also match across worker counts.
func TestTrainerParallelStatsIdentical(t *testing.T) {
	run := func(workers int) []EpochStats {
		examples := twoBlobs(40, 31)
		net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(32))
		tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
		stats, err := tr.Run(examples, TrainConfig{Epochs: 3, BatchSize: 10, Seed: 33, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	seq := run(1)
	for _, w := range []int{2, 8} {
		par := run(w)
		for e := range seq {
			if seq[e] != par[e] {
				t.Fatalf("workers=%d epoch %d stats %+v, want %+v", w, e, par[e], seq[e])
			}
		}
	}
}

// TestTrainerReusedAcrossRuns exercises the scratch cache: repeated Run
// calls (the fine-grained NLD pattern: one epoch per call) with varying
// worker counts must behave like one sequential trainer.
func TestTrainerReusedAcrossRuns(t *testing.T) {
	examples := twoBlobs(30, 41)
	build := func() *Trainer {
		return NewTrainer(NewNetwork([]int{2, 6, 2}, mat.NewRNG(42)), NewSGD(0.05, 0.9, 0))
	}
	seq, par := build(), build()
	for epoch := 0; epoch < 4; epoch++ {
		seed := uint64(50 + epoch)
		if _, err := seq.Run(examples, TrainConfig{Epochs: 1, BatchSize: 8, Seed: seed, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		workers := 2 + epoch*2 // 2, 4, 6, 8: grows the replica cache mid-flight
		if _, err := par.Run(examples, TrainConfig{Epochs: 1, BatchSize: 8, Seed: seed, Workers: workers}); err != nil {
			t.Fatal(err)
		}
	}
	sameParams(t, "reused", seq.Net, par.Net)
}

// TestBatchInferenceMatchesSequential asserts every batch helper equals its
// per-sample counterpart at several worker counts.
func TestBatchInferenceMatchesSequential(t *testing.T) {
	rng := mat.NewRNG(60)
	net := NewNetwork([]int{6, 12, 5}, rng)
	xs := make([][]float64, 37)
	for i := range xs {
		xs[i] = rng.NormVec(make([]float64, 6), 0, 1)
	}
	for _, workers := range []int{1, 2, 8} {
		confs := net.ConfidencesBatch(xs, workers)
		feats := net.FeaturesBatch(xs, workers)
		eConfs, eFeats := net.EvaluateBatch(xs, workers)
		preds := net.PredictBatch(xs, workers)
		for i, x := range xs {
			wantC := net.Confidences(x)
			wantF := net.Features(x)
			for j := range wantC {
				if confs[i][j] != wantC[j] || eConfs[i][j] != wantC[j] {
					t.Fatalf("workers=%d sample %d: confidence mismatch", workers, i)
				}
			}
			for j := range wantF {
				if feats[i][j] != wantF[j] || eFeats[i][j] != wantF[j] {
					t.Fatalf("workers=%d sample %d: feature mismatch", workers, i)
				}
			}
			if preds[i] != net.Predict(x) {
				t.Fatalf("workers=%d sample %d: prediction mismatch", workers, i)
			}
		}
	}
}

// TestReplicaSharesParameters pins the replica contract: parameter mutations
// on the original are visible through replicas without copying, and replica
// forward passes do not disturb the original's scratch-derived outputs.
func TestReplicaSharesParameters(t *testing.T) {
	rng := mat.NewRNG(70)
	net := NewNetwork([]int{3, 4, 2}, rng)
	rep := net.Replica()
	x := []float64{0.3, -1, 2}
	a, b := net.Confidences(x), rep.Confidences(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replica disagrees with original before update")
		}
	}
	// In-place parameter update must flow through to the replica.
	net.Weights[0].Data[0] += 0.5
	a, b = net.Confidences(x), rep.Confidences(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replica did not observe in-place parameter update")
		}
	}
}
