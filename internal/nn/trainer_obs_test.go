package nn

import (
	"testing"

	"enld/internal/mat"
	"enld/internal/obs"
)

// TestTrainerObsMetrics: an observed Run records epoch/batch durations and
// batch losses, and the metric stream does not perturb training — the trained
// weights are bit-identical to an unobserved run.
func TestTrainerObsMetrics(t *testing.T) {
	examples := twoBlobs(60, 1)
	cfg := TrainConfig{Epochs: 3, BatchSize: 16, Seed: 3}

	plain := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	if _, err := NewTrainer(plain, NewSGD(0.1, 0.9, 0)).Run(examples, cfg); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	observed := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(observed, NewSGD(0.1, 0.9, 0))
	tr.Obs = reg
	stats, err := tr.Run(examples, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for l := range plain.Weights {
		for i, w := range plain.Weights[l].Data {
			if observed.Weights[l].Data[i] != w {
				t.Fatalf("observed run diverged at layer %d weight %d", l, i)
			}
		}
	}

	epochs := reg.Histogram("enld_train_epoch_seconds",
		"Wall-clock duration of one training epoch.", obs.DefBuckets)
	if got := epochs.Count(); got != uint64(cfg.Epochs) {
		t.Fatalf("epoch histogram count = %d, want %d", got, cfg.Epochs)
	}
	var updates uint64
	for _, st := range stats {
		updates += uint64(st.BatchUpdates)
	}
	batches := reg.Histogram("enld_train_batch_seconds",
		"Wall-clock duration of one mini-batch update.", obs.DefBuckets)
	if got := batches.Count(); got != updates {
		t.Fatalf("batch histogram count = %d, want %d", got, updates)
	}
	losses := reg.Histogram("enld_train_batch_loss",
		"Mean per-sample cross-entropy loss of each mini-batch.", lossBuckets)
	if got := losses.Count(); got != updates {
		t.Fatalf("loss histogram count = %d, want %d", got, updates)
	}
	if losses.Sum() <= 0 {
		t.Fatal("loss histogram sum not positive")
	}
	tasks := reg.Counter("enld_pool_tasks_total",
		"Chunks executed by the worker pool, by pool name.",
		obs.Label{Key: "pool", Value: "train"})
	if tasks.Value() == 0 {
		t.Fatal("train pool recorded no chunks")
	}
}

// TestTrainerObsWatchdogCounters: watchdog trips, rollbacks and checkpoint
// captures surface as counters and agree with WatchdogStats.
func TestTrainerObsWatchdogCounters(t *testing.T) {
	examples := twoBlobs(120, 3)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
	reg := obs.NewRegistry()
	tr.Obs = reg
	if _, err := tr.Run(examples, TrainConfig{
		Epochs: 8, BatchSize: 16, Seed: 7,
		Watchdog:   WatchdogConfig{Enabled: true},
		AfterEpoch: pokeNaNOnce(2),
	}); err != nil {
		t.Fatal(err)
	}
	st := tr.WatchdogStats()
	trips := reg.Counter("enld_train_watchdog_trips_total",
		"Failed numerical-health checks during training.")
	rollbacks := reg.Counter("enld_train_rollbacks_total",
		"Checkpoint rollbacks performed by the training watchdog.")
	checkpoints := reg.Counter("enld_train_checkpoints_total",
		"Verified checkpoints captured by the training watchdog.")
	if trips.Value() == 0 {
		t.Fatal("no watchdog trips recorded")
	}
	if got := rollbacks.Value(); got != uint64(st.Rollbacks) {
		t.Fatalf("rollback counter = %d, want %d", got, st.Rollbacks)
	}
	if got := checkpoints.Value(); got != uint64(st.CheckpointsTaken) {
		t.Fatalf("checkpoint counter = %d, want %d", got, st.CheckpointsTaken)
	}
}
