package nn

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnhealthy is the sentinel every numerical-health failure wraps. Callers
// branch on errors.Is(err, ErrUnhealthy) to distinguish "the model state went
// bad" (NaN/Inf in losses, gradients or weights, or a diverging loss) from
// ordinary configuration or I/O errors.
var ErrUnhealthy = errors.New("nn: unhealthy model state")

// HealthIssue names the class of numerical failure a HealthError reports.
type HealthIssue string

// Health failure classes.
const (
	// IssueLoss: a batch or epoch loss came out NaN or ±Inf.
	IssueLoss HealthIssue = "loss-non-finite"
	// IssueGrad: a reduced gradient element is NaN or ±Inf.
	IssueGrad HealthIssue = "grad-non-finite"
	// IssueWeight: a parameter is NaN or ±Inf.
	IssueWeight HealthIssue = "weight-non-finite"
	// IssueExplosion: the epoch mean loss exceeded the divergence threshold
	// relative to the best epoch seen so far.
	IssueExplosion HealthIssue = "loss-explosion"
)

// HealthError is a typed numerical-health failure. It wraps ErrUnhealthy, so
// errors.Is(err, ErrUnhealthy) holds for every HealthError.
type HealthError struct {
	Issue HealthIssue
	// Epoch and Batch locate the failing check; Batch is 0 for end-of-epoch
	// checks.
	Epoch, Batch int
	// Value is the offending number (the non-finite loss/gradient/weight, or
	// the exploding epoch mean loss).
	Value float64
	// Layer and Index locate a non-finite parameter or gradient; both are -1
	// when the issue is loss-level.
	Layer, Index int
}

// Error implements error.
func (e *HealthError) Error() string {
	loc := fmt.Sprintf("epoch %d batch %d", e.Epoch, e.Batch)
	if e.Layer >= 0 {
		return fmt.Sprintf("nn: unhealthy: %s at %s (layer %d index %d, value %v)",
			e.Issue, loc, e.Layer, e.Index, e.Value)
	}
	return fmt.Sprintf("nn: unhealthy: %s at %s (value %v)", e.Issue, loc, e.Value)
}

// Unwrap makes every HealthError match ErrUnhealthy.
func (e *HealthError) Unwrap() error { return ErrUnhealthy }

// HealthConfig tunes the numerical-health checks. The zero value selects the
// defaults noted per field.
type HealthConfig struct {
	// CheckEvery is the batch-update cadence of the gradient and weight
	// scans (default 16). The per-batch loss check is a single float compare
	// and always runs; full parameter scans are what the cadence keeps off
	// the hot path.
	CheckEvery int
	// ExplodeFactor flags divergence when an epoch's mean loss exceeds
	// ExplodeFactor × (best epoch mean so far + 1e-3). Default 4; a negative
	// value disables the explosion check.
	ExplodeFactor float64
	// WarmupEpochs is how many epochs run before explosion checks engage
	// (default 2) — early training legitimately moves fast.
	WarmupEpochs int
}

func (c HealthConfig) normalized() HealthConfig {
	if c.CheckEvery <= 0 {
		c.CheckEvery = 16
	}
	if c.ExplodeFactor == 0 {
		c.ExplodeFactor = 4
	}
	if c.WarmupEpochs <= 0 {
		c.WarmupEpochs = 2
	}
	return c
}

// WatchdogConfig enables and tunes the trainer's numerical-health watchdog:
// health checks at the configured cadence, a ring of verified good
// checkpoints, and rollback-with-LR-decay recovery when a check fails.
type WatchdogConfig struct {
	// Enabled turns the watchdog on. The zero value leaves Run's behavior —
	// including its exact floating-point stream — untouched.
	Enabled bool
	// Health tunes the checks (zero value = defaults).
	Health HealthConfig
	// CheckpointEvery is the epoch cadence of ring checkpoints (default 1).
	// Checkpoints are only taken after an epoch that passed every check.
	CheckpointEvery int
	// RingSize is how many good checkpoints are retained (default 2).
	RingSize int
	// MaxRollbacks bounds recovery attempts per Run (default 3); when the
	// budget is exhausted Run returns the pending health error.
	MaxRollbacks int
	// LRDecay multiplies the optimizer's learning rate on every rollback
	// (default 0.5), so each retry re-approaches the divergence point more
	// conservatively.
	LRDecay float64
}

func (c WatchdogConfig) normalized() WatchdogConfig {
	c.Health = c.Health.normalized()
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 2
	}
	if c.MaxRollbacks <= 0 {
		c.MaxRollbacks = 3
	}
	if c.LRDecay <= 0 || c.LRDecay >= 1 {
		c.LRDecay = 0.5
	}
	return c
}

// WatchdogStats reports what the watchdog did during a Run.
type WatchdogStats struct {
	// HealthChecks counts executed checks (per-batch loss checks, cadenced
	// parameter scans and end-of-epoch evaluations).
	HealthChecks int
	// Rollbacks counts checkpoint restorations.
	Rollbacks int
	// LastUnhealthyEpoch is the most recent epoch flagged unhealthy, or -1.
	LastUnhealthyEpoch int
	// CheckpointsTaken counts ring captures (including the initial one).
	CheckpointsTaken int
	// VerifyFailures counts checkpoints whose integrity checksum no longer
	// matched at restore time and were skipped.
	VerifyFailures int
}

// Accumulate folds another run's stats into s (the platform accumulates
// across its general-model training and Algorithm-4 retrains).
func (s *WatchdogStats) Accumulate(o WatchdogStats) {
	s.HealthChecks += o.HealthChecks
	s.Rollbacks += o.Rollbacks
	s.CheckpointsTaken += o.CheckpointsTaken
	s.VerifyFailures += o.VerifyFailures
	if o.LastUnhealthyEpoch >= 0 {
		s.LastUnhealthyEpoch = o.LastUnhealthyEpoch
	}
}

// LRScaler is implemented by optimizers whose learning rate the watchdog can
// decay in place on rollback.
type LRScaler interface {
	// ScaleLR multiplies the learning rate by factor.
	ScaleLR(factor float64)
}

// ScaleLR implements LRScaler.
func (s *SGD) ScaleLR(factor float64) { s.LR *= factor }

// ScaleLR implements LRScaler.
func (a *Adam) ScaleLR(factor float64) { a.LR *= factor }

// health carries the mutable check state of one watchdog run.
type health struct {
	cfg      HealthConfig
	bestLoss float64
	haveBest bool
	epochs   int
	checks   int
}

func newHealth(cfg HealthConfig) *health {
	return &health{cfg: cfg.normalized()}
}

// findNonFinite returns the first NaN/±Inf in vs.
func findNonFinite(vs []float64) (idx int, val float64, found bool) {
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i, v, true
		}
	}
	return 0, 0, false
}

// checkBatch runs the per-batch checks: the (free) summed-loss finiteness
// check every batch, and full gradient + weight scans every cfg.CheckEvery
// batch updates. batch is the 1-based update index within the epoch.
func (h *health) checkBatch(epoch, batch int, loss float64, g *Grads, n *Network) error {
	h.checks++
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return &HealthError{Issue: IssueLoss, Epoch: epoch, Batch: batch, Value: loss, Layer: -1, Index: -1}
	}
	if batch%h.cfg.CheckEvery != 0 {
		return nil
	}
	for l := range g.Weights {
		if i, v, bad := findNonFinite(g.Weights[l].Data); bad {
			return &HealthError{Issue: IssueGrad, Epoch: epoch, Batch: batch, Value: v, Layer: l, Index: i}
		}
		if i, v, bad := findNonFinite(g.Biases[l]); bad {
			return &HealthError{Issue: IssueGrad, Epoch: epoch, Batch: batch, Value: v, Layer: l, Index: i}
		}
	}
	return checkWeights(n, epoch, batch)
}

// observeEpoch runs the end-of-epoch checks: weight finiteness and loss
// divergence against the rolling best epoch mean.
func (h *health) observeEpoch(epoch int, meanLoss float64, n *Network) error {
	h.checks++
	if math.IsNaN(meanLoss) || math.IsInf(meanLoss, 0) {
		return &HealthError{Issue: IssueLoss, Epoch: epoch, Value: meanLoss, Layer: -1, Index: -1}
	}
	if err := checkWeights(n, epoch, 0); err != nil {
		return err
	}
	h.epochs++
	if h.cfg.ExplodeFactor > 0 && h.epochs > h.cfg.WarmupEpochs && h.haveBest &&
		meanLoss > h.cfg.ExplodeFactor*(h.bestLoss+1e-3) {
		return &HealthError{Issue: IssueExplosion, Epoch: epoch, Value: meanLoss, Layer: -1, Index: -1}
	}
	if !h.haveBest || meanLoss < h.bestLoss {
		h.bestLoss, h.haveBest = meanLoss, true
	}
	return nil
}

// checkWeights scans every parameter of n for NaN/±Inf.
func checkWeights(n *Network, epoch, batch int) error {
	for l := range n.Weights {
		if i, v, bad := findNonFinite(n.Weights[l].Data); bad {
			return &HealthError{Issue: IssueWeight, Epoch: epoch, Batch: batch, Value: v, Layer: l, Index: i}
		}
		if i, v, bad := findNonFinite(n.Biases[l]); bad {
			return &HealthError{Issue: IssueWeight, Epoch: epoch, Batch: batch, Value: v, Layer: l, Index: i}
		}
	}
	return nil
}

// CheckFinite reports whether every parameter of n is finite, returning a
// HealthError locating the first NaN/±Inf otherwise. Recovery paths use it
// to verify a restored model before serving from it.
func (n *Network) CheckFinite() error {
	return checkWeights(n, 0, 0)
}
