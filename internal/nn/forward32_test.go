package nn

import (
	"math"
	"testing"

	"enld/internal/mat"
)

// forward32Net builds a random network and input batch shaped like the
// detection pipeline's (features in, classes out, two hidden layers).
func forward32Net(seed uint64, n int) (*Network, [][]float64) {
	rng := mat.NewRNG(seed)
	net := NewNetwork([]int{12, 32, 24, 10}, rng)
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, 12)
		rng.NormVec(xs[i], 0, 1)
	}
	return net, xs
}

// TestForward32NearFloat64 bounds the float32 ranking path's drift against
// the float64 reference: confidences and features agree to 1e-4 relative,
// and the argmax predictions match — the epsilon argument behind using the
// profile for vote and sampling decisions.
func TestForward32NearFloat64(t *testing.T) {
	net, xs := forward32Net(11, 97)
	var f32 Network32
	net.Snapshot32(&f32)

	confs64, feats64 := net.EvaluateBatch(xs, 1)
	confs32, feats32 := f32.EvaluateBatch32(xs, 1)
	check := func(name string, a, b [][]float64) {
		t.Helper()
		for i := range a {
			for j := range a[i] {
				diff := math.Abs(a[i][j] - b[i][j])
				scale := math.Max(1, math.Abs(a[i][j]))
				if diff/scale > 1e-4 {
					t.Fatalf("%s[%d][%d]: f64=%v f32=%v drift %v > 1e-4", name, i, j, a[i][j], b[i][j], diff/scale)
				}
			}
		}
	}
	check("confidences", confs64, confs32)
	check("features", feats64, feats32)

	p64 := net.PredictBatch(xs, 1)
	p32 := f32.PredictBatch32(xs, 1)
	for i := range p64 {
		if p64[i] != p32[i] {
			t.Fatalf("prediction %d: f64=%d f32=%d", i, p64[i], p32[i])
		}
	}
}

// TestForward32WorkersBitIdentical pins the float32 profile's own
// determinism contract: identical outputs at every worker count.
func TestForward32WorkersBitIdentical(t *testing.T) {
	net, xs := forward32Net(13, 150)
	var f32 Network32
	net.Snapshot32(&f32)
	wantC, wantF := f32.EvaluateBatch32(xs, 1)
	wantP := f32.PredictBatch32(xs, 1)
	for _, workers := range []int{2, 8} {
		gotC, gotF := f32.EvaluateBatch32(xs, workers)
		gotP := f32.PredictBatch32(xs, workers)
		for i := range wantC {
			if gotP[i] != wantP[i] {
				t.Fatalf("workers=%d: prediction %d differs", workers, i)
			}
			for j := range wantC[i] {
				if gotC[i][j] != wantC[i][j] {
					t.Fatalf("workers=%d: confidence [%d][%d] differs", workers, i, j)
				}
			}
			for j := range wantF[i] {
				if gotF[i][j] != wantF[i][j] {
					t.Fatalf("workers=%d: feature [%d][%d] differs", workers, i, j)
				}
			}
		}
	}
}

// TestSnapshot32Refresh: re-snapshotting after training reflects the new
// parameters, and snapshots reuse storage across refreshes.
func TestSnapshot32Refresh(t *testing.T) {
	net, xs := forward32Net(17, 16)
	var f32 Network32
	net.Snapshot32(&f32)
	before := f32.PredictBatch32(xs, 1)
	beforeConf, _ := f32.EvaluateBatch32(xs, 1)

	// Perturb the network, refresh, and compare against a fresh snapshot.
	tr := NewTrainer(net, NewSGD(0.5, 0.9, 0))
	examples := make([]Example, len(xs))
	for i, x := range xs {
		examples[i] = Example{X: x, Target: OneHot(i%net.Classes(), net.Classes())}
	}
	if _, err := tr.Run(examples, TrainConfig{Epochs: 3, BatchSize: 8, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	net.Snapshot32(&f32)
	var fresh Network32
	net.Snapshot32(&fresh)
	refreshedConf, _ := f32.EvaluateBatch32(xs, 1)
	freshConf, _ := fresh.EvaluateBatch32(xs, 1)
	for i := range refreshedConf {
		for j := range refreshedConf[i] {
			if refreshedConf[i][j] != freshConf[i][j] {
				t.Fatalf("refreshed snapshot differs from fresh at [%d][%d]", i, j)
			}
		}
	}
	// The training above must have moved the outputs; otherwise the refresh
	// assertions are vacuous.
	changed := false
	for i := range beforeConf {
		for j := range beforeConf[i] {
			if beforeConf[i][j] != refreshedConf[i][j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatalf("training changed no confidence (before=%v)", before[:4])
	}
}

// TestForward32InputLengthPanics pins the float32 batch input validation.
func TestForward32InputLengthPanics(t *testing.T) {
	net, _ := forward32Net(19, 1)
	var f32 Network32
	net.Snapshot32(&f32)
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardBatch32 accepted a malformed input row")
		}
	}()
	var s BatchScratch32
	f32.ForwardBatch32(&s, [][]float64{make([]float64, 3)})
}
