// Package nn implements the small feed-forward neural-network training stack
// that stands in for the paper's convolutional models (ResNet-110,
// DenseNet-121, ResNet-164).
//
// ENLD consumes exactly two model outputs: the softmax confidence vector
// M(x,θ) and the penultimate-layer feature representation M̂(x,θ). Any
// trainable classifier exposing both exercises the same algorithmic surface,
// so this package provides multi-layer perceptrons over feature vectors with
// SGD+momentum / Adam optimizers, mixup augmentation (Eq. 1–2 of the paper)
// and cross-entropy loss, plus named architecture configurations mirroring
// the paper's three network families (see Architectures in arch.go).
package nn

import (
	"errors"
	"fmt"
	"math"

	"enld/internal/mat"
)

// Network is a fully connected feed-forward classifier.
//
// Layout: input → [Dense → ReLU]* → Dense → softmax. The activation vector
// feeding the final Dense layer is the feature representation M̂(x,θ); the
// softmax output is the confidence vector M(x,θ).
//
// A Network is not safe for concurrent use: forward and backward passes share
// the scratch buffers allocated at construction time. Clone the network to
// train independent copies from several goroutines, or Replica to run
// concurrent forward/backward passes against the same (externally
// synchronized) parameters.
type Network struct {
	// Weights[l] maps activations of layer l (length sizes[l]) to
	// pre-activations of layer l+1 (length sizes[l+1]).
	Weights []*mat.Matrix
	Biases  [][]float64
	sizes   []int

	// Scratch buffers reused across forward/backward calls.
	acts   [][]float64 // post-activation per layer, acts[0] is the input copy
	pre    [][]float64 // pre-activation per non-input layer
	deltas [][]float64 // error terms per non-input layer
	probs  []float64   // softmax output buffer
}

// NewNetwork constructs a network with the given layer sizes
// (input, hidden..., classes) and He-style random initialization.
// It panics if fewer than two sizes are given or any size is non-positive.
func NewNetwork(sizes []int, rng *mat.RNG) *Network {
	if len(sizes) < 2 {
		panic("nn: NewNetwork needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("nn: NewNetwork with non-positive layer size")
		}
	}
	n := &Network{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		w := mat.NewMatrix(sizes[l+1], sizes[l])
		// He initialization keeps ReLU activations well-scaled in deep stacks.
		std := math.Sqrt(2.0 / float64(sizes[l]))
		rng.NormVec(w.Data, 0, std)
		n.Weights = append(n.Weights, w)
		n.Biases = append(n.Biases, make([]float64, sizes[l+1]))
	}
	n.allocScratch()
	return n
}

func (n *Network) allocScratch() {
	L := len(n.sizes)
	n.acts = make([][]float64, L)
	n.pre = make([][]float64, L-1)
	n.deltas = make([][]float64, L-1)
	for i, s := range n.sizes {
		n.acts[i] = make([]float64, s)
		if i > 0 {
			n.pre[i-1] = make([]float64, s)
			n.deltas[i-1] = make([]float64, s)
		}
	}
	n.probs = make([]float64, n.sizes[L-1])
}

// InputDim returns the expected input vector length.
func (n *Network) InputDim() int { return n.sizes[0] }

// Classes returns the number of output classes.
func (n *Network) Classes() int { return n.sizes[len(n.sizes)-1] }

// FeatureDim returns the length of the feature representation M̂(x,θ) —
// the activation vector entering the final classifier layer.
func (n *Network) FeatureDim() int { return n.sizes[len(n.sizes)-2] }

// Sizes returns a copy of the layer size vector.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for l, w := range n.Weights {
		total += len(w.Data) + len(n.Biases[l])
	}
	return total
}

// forward runs the network on x, filling the scratch activations.
// The returned slice is the output-layer pre-activation (logits).
func (n *Network) forward(x []float64) []float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("nn: input length %d, want %d", len(x), n.sizes[0]))
	}
	copy(n.acts[0], x)
	last := len(n.Weights) - 1
	for l, w := range n.Weights {
		out := n.pre[l]
		w.MulVec(out, n.acts[l])
		mat.Axpy(1, n.Biases[l], out)
		if l < last {
			// ReLU into the next activation buffer.
			a := n.acts[l+1]
			for i, v := range out {
				if v > 0 {
					a[i] = v
				} else {
					a[i] = 0
				}
			}
		} else {
			copy(n.acts[l+1], out)
		}
	}
	return n.pre[last]
}

// Confidences returns the softmax output M(x,θ). The returned slice is a
// fresh allocation owned by the caller.
func (n *Network) Confidences(x []float64) []float64 {
	logits := n.forward(x)
	out := make([]float64, len(logits))
	mat.Softmax(out, logits)
	return out
}

// ConfidencesInto computes M(x,θ) into dst, avoiding the allocation of
// Confidences. dst must have length Classes().
func (n *Network) ConfidencesInto(dst, x []float64) []float64 {
	logits := n.forward(x)
	return mat.Softmax(dst, logits)
}

// Predict returns argmax M(x,θ), the predicted class label.
func (n *Network) Predict(x []float64) int {
	return mat.ArgMax(n.forward(x))
}

// Features returns the feature representation M̂(x,θ): the post-ReLU
// activations of the last hidden layer. The returned slice is a fresh
// allocation owned by the caller.
func (n *Network) Features(x []float64) []float64 {
	n.forward(x)
	feat := n.acts[len(n.acts)-2]
	return append([]float64(nil), feat...)
}

// FeaturesInto computes M̂(x,θ) into dst. dst must have length FeatureDim().
func (n *Network) FeaturesInto(dst, x []float64) []float64 {
	n.forward(x)
	return mat.Copy(dst, n.acts[len(n.acts)-2])
}

// Evaluate runs one forward pass and returns both the confidence vector
// M(x,θ) and the feature representation M̂(x,θ) as fresh allocations.
// Detectors that need both should prefer this over separate Confidences and
// Features calls, which would each run their own forward pass.
func (n *Network) Evaluate(x []float64) (conf, feat []float64) {
	logits := n.forward(x)
	conf = make([]float64, len(logits))
	mat.Softmax(conf, logits)
	feat = append([]float64(nil), n.acts[len(n.acts)-2]...)
	return conf, feat
}

// Loss returns the cross-entropy loss of the network on (x, target) where
// target is a distribution over classes (one-hot for hard labels).
func (n *Network) Loss(x, target []float64) float64 {
	logits := n.forward(x)
	lse := mat.LogSumExp(logits)
	var loss float64
	for c, t := range target {
		if t > 0 {
			loss += t * (lse - logits[c])
		}
	}
	return loss
}

// Grads holds per-layer gradients matching a Network's parameter shapes.
type Grads struct {
	Weights []*mat.Matrix
	Biases  [][]float64
}

// NewGrads returns a zeroed gradient accumulator shaped like n.
func (n *Network) NewGrads() *Grads {
	g := &Grads{}
	for l, w := range n.Weights {
		g.Weights = append(g.Weights, mat.NewMatrix(w.Rows, w.Cols))
		g.Biases = append(g.Biases, make([]float64, len(n.Biases[l])))
	}
	return g
}

// Zero clears all accumulated gradients.
func (g *Grads) Zero() {
	for l := range g.Weights {
		g.Weights[l].Zero()
		clear(g.Biases[l])
	}
}

// Add accumulates other into g element-wise. The parallel trainer reduces
// per-chunk gradient accumulators with Add in fixed chunk order, which keeps
// the reduction bit-identical at any worker count.
func (g *Grads) Add(other *Grads) {
	for l := range g.Weights {
		mat.Axpy(1, other.Weights[l].Data, g.Weights[l].Data)
		mat.Axpy(1, other.Biases[l], g.Biases[l])
	}
}

// Backward accumulates into g the gradient of the cross-entropy loss of
// (x, target) and returns the loss value. target is a distribution over
// classes; mixup produces two-hot soft targets, plain training one-hot ones.
func (n *Network) Backward(g *Grads, x, target []float64) float64 {
	if len(target) != n.Classes() {
		panic("nn: Backward target length mismatch")
	}
	logits := n.forward(x)
	mat.Softmax(n.probs, logits)
	lse := mat.LogSumExp(logits)
	var loss float64
	last := len(n.Weights) - 1
	// dL/dlogits = softmax - target.
	dOut := n.deltas[last]
	for c := range dOut {
		dOut[c] = n.probs[c] - target[c]
		if target[c] > 0 {
			loss += target[c] * (lse - logits[c])
		}
	}
	for l := last; l >= 0; l-- {
		delta := n.deltas[l]
		g.Weights[l].AddOuter(1, delta, n.acts[l])
		mat.Axpy(1, delta, g.Biases[l])
		if l > 0 {
			prev := n.deltas[l-1]
			n.Weights[l].MulVecT(prev, delta)
			// ReLU derivative gates on the pre-activation of layer l.
			for i, p := range n.pre[l-1] {
				if p <= 0 {
					prev[i] = 0
				}
			}
		}
	}
	return loss
}

// Clone returns a deep copy of the network with its own scratch buffers, so
// the copy can be trained or queried concurrently with the original.
func (n *Network) Clone() *Network {
	c := &Network{sizes: append([]int(nil), n.sizes...)}
	for l, w := range n.Weights {
		c.Weights = append(c.Weights, w.Clone())
		c.Biases = append(c.Biases, append([]float64(nil), n.Biases[l]...))
	}
	c.allocScratch()
	return c
}

// Replica returns a network sharing n's parameter storage but owning private
// scratch buffers. Replicas make the data-parallel hot paths cheap: forward
// and backward passes only read parameters (Backward accumulates into the
// caller's Grads), so any number of replicas may run concurrently as long as
// nothing mutates the parameters during the parallel section. Parameter
// updates (Optimizer.Step, CopyFrom) write the shared backing arrays in
// place, so replicas observe them without re-synchronization.
func (n *Network) Replica() *Network {
	r := &Network{sizes: n.sizes, Weights: n.Weights, Biases: n.Biases}
	r.allocScratch()
	return r
}

// CopyFrom overwrites n's parameters with src's. The two networks must have
// identical architectures.
func (n *Network) CopyFrom(src *Network) error {
	if len(n.sizes) != len(src.sizes) {
		return errors.New("nn: CopyFrom architecture mismatch")
	}
	for i, s := range n.sizes {
		if src.sizes[i] != s {
			return errors.New("nn: CopyFrom architecture mismatch")
		}
	}
	for l := range n.Weights {
		copy(n.Weights[l].Data, src.Weights[l].Data)
		copy(n.Biases[l], src.Biases[l])
	}
	return nil
}
