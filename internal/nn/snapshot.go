package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"enld/internal/mat"
)

// snapshot is the gob-serializable form of a Network. Only parameters and
// layer sizes are persisted; scratch buffers are rebuilt on load.
type snapshot struct {
	Sizes   []int
	Weights [][]float64
	Biases  [][]float64
}

// Save writes the network's architecture and parameters to w in gob format.
func (n *Network) Save(w io.Writer) error {
	s := snapshot{Sizes: n.sizes}
	for l, wm := range n.Weights {
		s.Weights = append(s.Weights, append([]float64(nil), wm.Data...))
		s.Biases = append(s.Biases, append([]float64(nil), n.Biases[l]...))
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(s.Sizes) < 2 {
		return nil, errors.New("nn: load: malformed snapshot (sizes)")
	}
	if len(s.Weights) != len(s.Sizes)-1 || len(s.Biases) != len(s.Sizes)-1 {
		return nil, errors.New("nn: load: malformed snapshot (layer count)")
	}
	n := &Network{sizes: append([]int(nil), s.Sizes...)}
	for l := 0; l+1 < len(s.Sizes); l++ {
		rows, cols := s.Sizes[l+1], s.Sizes[l]
		if len(s.Weights[l]) != rows*cols || len(s.Biases[l]) != rows {
			return nil, fmt.Errorf("nn: load: malformed snapshot at layer %d", l)
		}
		w := mat.NewMatrix(rows, cols)
		copy(w.Data, s.Weights[l])
		n.Weights = append(n.Weights, w)
		n.Biases = append(n.Biases, append([]float64(nil), s.Biases[l]...))
	}
	n.allocScratch()
	return n, nil
}
