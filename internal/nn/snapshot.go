package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"enld/internal/fsio"
	"enld/internal/mat"
)

// Snapshot wire format (version 1):
//
//	offset  size  field
//	0       6     magic "ENLDNN"
//	6       2     format version, big-endian uint16
//	8       8     payload length, big-endian uint64
//	16      4     CRC-32 (IEEE) of the payload, big-endian uint32
//	20      n     gob-encoded snapshot payload
//
// The header lets Load reject foreign files (bad magic), files written by a
// future incompatible format (version), truncated files (declared length
// outrunning the data) and bit-flipped files (CRC mismatch) with precise
// errors before a single gob byte is interpreted.
const (
	snapshotMagic   = "ENLDNN"
	snapshotVersion = 1
	snapshotHeader  = len(snapshotMagic) + 2 + 8 + 4
	// maxSnapshotBytes bounds the declared payload length so a corrupted or
	// hostile header cannot drive a huge allocation (1 GiB is orders of
	// magnitude above any network this repository builds).
	maxSnapshotBytes = 1 << 30
)

// snapshot is the gob-serializable form of a Network. Only parameters and
// layer sizes are persisted; scratch buffers are rebuilt on load.
type snapshot struct {
	Sizes   []int
	Weights [][]float64
	Biases  [][]float64
}

// encodeSnapshot renders s in the versioned, checksummed wire format.
func encodeSnapshot(s snapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("nn: save: %w", err)
	}
	out := make([]byte, snapshotHeader, snapshotHeader+payload.Len())
	copy(out, snapshotMagic)
	binary.BigEndian.PutUint16(out[6:], snapshotVersion)
	binary.BigEndian.PutUint64(out[8:], uint64(payload.Len()))
	binary.BigEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload.Bytes()))
	return append(out, payload.Bytes()...), nil
}

// Save writes the network's architecture and parameters to w in the
// versioned, CRC-protected snapshot format.
func (n *Network) Save(w io.Writer) error {
	s := snapshot{Sizes: n.sizes}
	for l, wm := range n.Weights {
		s.Weights = append(s.Weights, append([]float64(nil), wm.Data...))
		s.Biases = append(s.Biases, append([]float64(nil), n.Biases[l]...))
	}
	data, err := encodeSnapshot(s)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save. It rejects foreign,
// truncated, corrupted and malformed snapshots with descriptive errors; a
// nil error guarantees a structurally valid, immediately usable network.
func Load(r io.Reader) (*Network, error) {
	hdr := make([]byte, snapshotHeader)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("nn: load: reading snapshot header: %w", err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return nil, errors.New("nn: load: not an ENLD network snapshot (bad magic)")
	}
	if v := binary.BigEndian.Uint16(hdr[6:]); v != snapshotVersion {
		return nil, fmt.Errorf("nn: load: unsupported snapshot version %d (this build reads version %d)", v, snapshotVersion)
	}
	size := binary.BigEndian.Uint64(hdr[8:])
	if size > maxSnapshotBytes {
		return nil, fmt.Errorf("nn: load: declared payload size %d exceeds the %d-byte limit", size, maxSnapshotBytes)
	}
	// Stream the payload instead of allocating the declared size up front:
	// a corrupted header claiming hundreds of megabytes then costs only the
	// bytes actually present before the truncation error fires.
	var payload bytes.Buffer
	if m, err := io.CopyN(&payload, r, int64(size)); err != nil {
		return nil, fmt.Errorf("nn: load: truncated snapshot: %d of %d payload bytes: %w", m, size, err)
	}
	want := binary.BigEndian.Uint32(hdr[16:])
	if got := crc32.ChecksumIEEE(payload.Bytes()); got != want {
		return nil, fmt.Errorf("nn: load: snapshot checksum mismatch (header %08x, payload %08x): corrupted snapshot", want, got)
	}
	var s snapshot
	if err := gob.NewDecoder(&payload).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(s.Sizes) < 2 {
		return nil, errors.New("nn: load: malformed snapshot (sizes)")
	}
	for i, sz := range s.Sizes {
		if sz <= 0 {
			return nil, fmt.Errorf("nn: load: malformed snapshot (non-positive layer size %d at %d)", sz, i)
		}
	}
	if len(s.Weights) != len(s.Sizes)-1 || len(s.Biases) != len(s.Sizes)-1 {
		return nil, errors.New("nn: load: malformed snapshot (layer count)")
	}
	n := &Network{sizes: append([]int(nil), s.Sizes...)}
	for l := 0; l+1 < len(s.Sizes); l++ {
		rows, cols := s.Sizes[l+1], s.Sizes[l]
		if len(s.Weights[l]) != rows*cols || len(s.Biases[l]) != rows {
			return nil, fmt.Errorf("nn: load: malformed snapshot at layer %d", l)
		}
		w := mat.NewMatrix(rows, cols)
		copy(w.Data, s.Weights[l])
		n.Weights = append(n.Weights, w)
		n.Biases = append(n.Biases, append([]float64(nil), s.Biases[l]...))
	}
	n.allocScratch()
	return n, nil
}

// SaveFile atomically writes the network snapshot to path via the shared
// tmp+fsync+rename helper. A crash at any point leaves either the previous
// file intact or a stray temporary — never a torn snapshot at path.
func (n *Network) SaveFile(path string) error {
	return fsio.WriteFileAtomic(path, func(w io.Writer) error {
		if err := n.Save(w); err != nil {
			return fmt.Errorf("nn: save %s: %w", path, err)
		}
		return nil
	})
}

// LoadFile reads a snapshot previously written with SaveFile (or Save).
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	defer f.Close()
	n, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	return n, nil
}
