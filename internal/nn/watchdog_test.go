package nn

import (
	"errors"
	"math"
	"testing"

	"enld/internal/mat"
)

// pokeNaNOnce returns an AfterEpoch hook that sets one weight to NaN the
// first time epoch == at fires (re-runs of the epoch after a rollback do not
// re-poke, so recovery can converge).
func pokeNaNOnce(at int) func(int, *Network) {
	done := false
	return func(e int, net *Network) {
		if e == at && !done {
			done = true
			net.Weights[0].Data[0] = math.NaN()
		}
	}
}

func watchdogRun(t *testing.T, workers int, hook func(int, *Network)) ([]float64, WatchdogStats, []EpochStats) {
	t.Helper()
	examples := twoBlobs(120, 3)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
	stats, err := tr.Run(examples, TrainConfig{
		Epochs: 8, BatchSize: 16, Seed: 7, Workers: workers,
		Watchdog:   WatchdogConfig{Enabled: true},
		AfterEpoch: hook,
	})
	if err != nil {
		t.Fatalf("watchdog run (workers=%d): %v", workers, err)
	}
	var flat []float64
	for l, w := range net.Weights {
		flat = append(flat, w.Data...)
		flat = append(flat, net.Biases[l]...)
	}
	return flat, tr.WatchdogStats(), stats
}

func TestWatchdogRollsBackFromNaNPoke(t *testing.T) {
	weights, st, stats := watchdogRun(t, 1, pokeNaNOnce(2))
	if st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", st.Rollbacks)
	}
	// Poked after epoch 2's checkpoint, so epoch 3 is the one that trips.
	if st.LastUnhealthyEpoch != 3 {
		t.Fatalf("last unhealthy epoch = %d, want 3", st.LastUnhealthyEpoch)
	}
	if len(stats) != 8 {
		t.Fatalf("epoch stats = %d, want 8", len(stats))
	}
	if _, v, bad := findNonFinite(weights); bad {
		t.Fatalf("recovered weights contain %v", v)
	}
	if st.CheckpointsTaken < 2 || st.HealthChecks == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

// TestWatchdogRecoveryDeterministicAcrossWorkers is the acceptance check:
// the same seed and the same injected fault yield bit-identical recovered
// weights at every worker count.
func TestWatchdogRecoveryDeterministicAcrossWorkers(t *testing.T) {
	ref, refStats, _ := watchdogRun(t, 1, pokeNaNOnce(2))
	for _, workers := range []int{2, 8} {
		got, st, _ := watchdogRun(t, workers, pokeNaNOnce(2))
		if st != refStats {
			t.Fatalf("workers=%d watchdog stats %+v != %+v", workers, st, refStats)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d weight %d differs: %v != %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestWatchdogRecoveredRunConverges(t *testing.T) {
	examples := twoBlobs(120, 3)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
	if _, err := tr.Run(examples, TrainConfig{
		Epochs: 12, BatchSize: 16, Seed: 7,
		Watchdog:   WatchdogConfig{Enabled: true},
		AfterEpoch: pokeNaNOnce(3),
	}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, examples); acc < 0.9 {
		t.Fatalf("recovered training accuracy %.3f, want >= 0.9", acc)
	}
}

func TestWatchdogLossExplosionRollback(t *testing.T) {
	examples := twoBlobs(120, 3)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(net, NewSGD(0.05, 0.9, 0))
	blown := false
	_, err := tr.Run(examples, TrainConfig{
		Epochs: 10, BatchSize: 16, Seed: 7,
		Watchdog: WatchdogConfig{Enabled: true},
		AfterEpoch: func(e int, n *Network) {
			// Shift one output bias by 1e9 once, after the warmup epochs:
			// the next epoch misclassifies half the data with enormous
			// confidence, so its mean loss explodes while every parameter,
			// gradient, and loss value stays finite — only the divergence
			// check can catch this.
			if e == 4 && !blown {
				blown = true
				n.Biases[len(n.Biases)-1][0] += 1e9
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.WatchdogStats()
	if st.Rollbacks == 0 {
		t.Fatalf("loss explosion not detected: %+v", st)
	}
	if st.LastUnhealthyEpoch != 5 {
		t.Fatalf("last unhealthy epoch = %d, want 5", st.LastUnhealthyEpoch)
	}
}

func TestWatchdogBudgetExhaustedSurfacesErrUnhealthy(t *testing.T) {
	examples := twoBlobs(120, 3)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
	_, err := tr.Run(examples, TrainConfig{
		Epochs: 8, BatchSize: 16, Seed: 7,
		Watchdog: WatchdogConfig{Enabled: true, MaxRollbacks: 2},
		// Poke NaN every epoch: recovery can never outrun the fault.
		AfterEpoch: func(e int, n *Network) { n.Weights[0].Data[0] = math.NaN() },
	})
	if err == nil {
		t.Fatal("run with a persistent fault succeeded")
	}
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("error %v does not wrap ErrUnhealthy", err)
	}
	var herr *HealthError
	if !errors.As(err, &herr) {
		t.Fatalf("error %v carries no *HealthError", err)
	}
	if st := tr.WatchdogStats(); st.Rollbacks != 2 {
		t.Fatalf("rollbacks = %d, want the budget of 2", st.Rollbacks)
	}
}

func TestWatchdogHealthyRunTakesCheckpointsOnly(t *testing.T) {
	_, st, stats := watchdogRun(t, 1, nil)
	if st.Rollbacks != 0 || st.VerifyFailures != 0 {
		t.Fatalf("healthy run recovered: %+v", st)
	}
	if st.LastUnhealthyEpoch != -1 {
		t.Fatalf("healthy run has last unhealthy epoch %d", st.LastUnhealthyEpoch)
	}
	// Initial checkpoint + one per epoch at the default cadence.
	if st.CheckpointsTaken != len(stats)+1 {
		t.Fatalf("checkpoints = %d, want %d", st.CheckpointsTaken, len(stats)+1)
	}
}

func TestWatchdogStatsClearedOnPlainRun(t *testing.T) {
	examples := twoBlobs(60, 3)
	net := NewNetwork([]int{2, 8, 2}, mat.NewRNG(2))
	tr := NewTrainer(net, NewSGD(0.1, 0.9, 0))
	cfg := TrainConfig{Epochs: 1, BatchSize: 16, Seed: 7, Watchdog: WatchdogConfig{Enabled: true}}
	if _, err := tr.Run(examples, cfg); err != nil {
		t.Fatal(err)
	}
	if tr.WatchdogStats().CheckpointsTaken == 0 {
		t.Fatal("watchdog run recorded nothing")
	}
	cfg.Watchdog = WatchdogConfig{}
	if _, err := tr.Run(examples, cfg); err != nil {
		t.Fatal(err)
	}
	if tr.WatchdogStats() != (WatchdogStats{}) {
		t.Fatalf("plain run kept stale stats: %+v", tr.WatchdogStats())
	}
}

func TestCheckpointRingVerifyFailureFallsBack(t *testing.T) {
	net := NewNetwork([]int{2, 4, 2}, mat.NewRNG(3))
	ring := newCheckpointRing(3)
	rng := mat.NewRNG(9)

	ring.capture(net, *rng, 0)
	old := net.Weights[0].Data[0]
	net.Weights[0].Data[0] = 42
	ring.capture(net, *rng, 1)

	// Corrupt the newest checkpoint in memory (the bit-flip failure mode).
	newest := ring.entries[len(ring.entries)-1]
	newest.weights[0][0] = math.Float64frombits(math.Float64bits(newest.weights[0][0]) ^ 1)

	ck, fails := ring.restore(net)
	if fails != 1 {
		t.Fatalf("verify failures = %d, want 1", fails)
	}
	if ck == nil || ck.epoch != 0 {
		t.Fatalf("restore fell back to %+v, want epoch 0", ck)
	}
	if net.Weights[0].Data[0] != old {
		t.Fatalf("weights not restored to epoch-0 state: %v", net.Weights[0].Data[0])
	}

	// Corrupting the last remaining entry leaves nothing to restore.
	ring.entries[0].biases[0][0] = math.NaN()
	if ck, fails := ring.restore(net); ck != nil || fails != 1 {
		t.Fatalf("restore of fully corrupt ring returned %+v (fails=%d)", ck, fails)
	}
}

func TestCheckpointRingReusesBuffersWhenFull(t *testing.T) {
	net := NewNetwork([]int{2, 4, 2}, mat.NewRNG(3))
	ring := newCheckpointRing(2)
	rng := mat.NewRNG(9)
	for e := 0; e < 5; e++ {
		net.Weights[0].Data[0] = float64(e)
		ring.capture(net, *rng, e)
	}
	if len(ring.entries) != 2 {
		t.Fatalf("ring holds %d entries, want 2", len(ring.entries))
	}
	if ring.entries[0].epoch != 3 || ring.entries[1].epoch != 4 {
		t.Fatalf("ring epochs = %d,%d want 3,4", ring.entries[0].epoch, ring.entries[1].epoch)
	}
	if ck, _ := ring.restore(net); ck.epoch != 4 || net.Weights[0].Data[0] != 4 {
		t.Fatalf("restored epoch %d value %v", ck.epoch, net.Weights[0].Data[0])
	}
}

func TestCheckFinite(t *testing.T) {
	net := NewNetwork([]int{2, 4, 2}, mat.NewRNG(3))
	if err := net.CheckFinite(); err != nil {
		t.Fatalf("fresh network unhealthy: %v", err)
	}
	net.Biases[1][0] = math.Inf(1)
	err := net.CheckFinite()
	if err == nil {
		t.Fatal("Inf bias passed CheckFinite")
	}
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("CheckFinite error %v does not wrap ErrUnhealthy", err)
	}
}

func TestHealthExplosionRespectsWarmup(t *testing.T) {
	h := newHealth(HealthConfig{})
	net := NewNetwork([]int{2, 3, 2}, mat.NewRNG(1))
	// Epochs 0-1 are warmup: even a wild jump passes.
	for e, loss := range []float64{1.0, 50.0} {
		if err := h.observeEpoch(e, loss, net); err != nil {
			t.Fatalf("warmup epoch %d flagged: %v", e, err)
		}
	}
	if err := h.observeEpoch(2, 0.9, net); err != nil {
		t.Fatalf("healthy epoch flagged: %v", err)
	}
	err := h.observeEpoch(3, 100, net)
	var herr *HealthError
	if !errors.As(err, &herr) || herr.Issue != IssueExplosion {
		t.Fatalf("explosion not flagged: %v", err)
	}
}
