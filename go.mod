module enld

go 1.22
