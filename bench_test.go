package enld

// Benchmarks: one per table/figure of the paper (regenerating the artifact
// at reduced scale per iteration) plus kernel benchmarks for the substrates
// whose complexity the paper calls out (KD-tree versus brute-force k-NN,
// §IV-D) and per-method end-to-end detection cost (Fig. 8).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks measure the full experiment pipeline — dataset
// generation, platform training, every method on every shard — so they are
// dominated by training time exactly as the paper's timings are.

import (
	"testing"

	"enld/internal/ann"
	"enld/internal/core"
	"enld/internal/dataset"
	"enld/internal/experiments"
	"enld/internal/kdtree"
	"enld/internal/mat"
	"enld/internal/nn"
	"enld/internal/obs"
	"enld/internal/parallel"
	"enld/internal/sampling"
)

// benchCfg is the reduced-scale configuration the per-figure benchmarks use.
func benchCfg(seed uint64) experiments.Config {
	return experiments.Config{
		Seed:           seed,
		DataScale:      0.4,
		Shards:         2,
		Etas:           []float64{0.2},
		PlatformEpochs: 10,
		Iterations:     3,
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, benchCfg(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13a(b *testing.B) { benchExperiment(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { benchExperiment(b, "fig13b") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }

// Extension experiments (beyond the paper's evaluation; see DESIGN.md).
func BenchmarkExt1(b *testing.B) { benchExperiment(b, "ext1") }
func BenchmarkExt2(b *testing.B) { benchExperiment(b, "ext2") }
func BenchmarkExt3(b *testing.B) { benchExperiment(b, "ext3") }

// BenchmarkENLDAblations measures per-request cost of each §V-I ablation
// variant on an identical incremental dataset — the cost side of Fig. 14
// (e.g. ENLD-3 trades accuracy for a smaller training set).
func BenchmarkENLDAblations(b *testing.B) {
	wb := benchWorkbench(b)
	shard := wb.Shards[0]
	for name, cfg := range experiments.AblationVariants(wb.ENLDCfg) {
		d := &core.ENLD{Platform: wb.Platform, Config: cfg}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(shard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContrastiveIndex compares the KD-tree contrastive sampler with
// the brute-force scan inside a full detection run (§IV-D).
func BenchmarkContrastiveIndex(b *testing.B) {
	wb := benchWorkbench(b)
	shard := wb.Shards[0]
	for _, strat := range []sampling.Strategy{
		sampling.Contrastive{},
		sampling.Contrastive{Brute: true},
		sampling.Contrastive{ANN: true},
	} {
		cfg := wb.ENLDCfg
		cfg.Strategy = strat
		d := &core.ENLD{Platform: wb.Platform, Config: cfg}
		b.Run(strat.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(shard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWorkbench builds one small prepared workload shared by the
// per-method benchmarks.
func benchWorkbench(b *testing.B) *experiments.Workbench {
	b.Helper()
	wb, err := experiments.BuildWorkbench("cifar100", 0.2, benchCfg(1))
	if err != nil {
		b.Fatal(err)
	}
	return wb
}

// BenchmarkDetect measures per-request detection cost of each method on an
// identical incremental dataset — the per-task process-time comparison
// behind Fig. 8. The enld-workers variants pin ENLD's data-parallel scaling
// (same detections at every worker count); benchsummary pairs workers=1
// against workers=4 in BENCH_ci.json.
func BenchmarkDetect(b *testing.B) {
	wb := benchWorkbench(b)
	shard := wb.Shards[0]
	for _, d := range experiments.StandardMethods(wb, 99) {
		b.Run(d.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(shard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, workers := range []int{1, 4} {
		cfg := wb.ENLDCfg
		cfg.Workers = workers
		d := &core.ENLD{Platform: wb.Platform, Config: cfg}
		b.Run("enld-workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(shard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Opt-in fast paths (DESIGN.md §4): float32 ranking forwards, the
	// approximate IVF k-NN index, and both stacked. Guardrail tests bound
	// each one's accuracy; these pin the speed side of the trade.
	for _, variant := range []struct {
		name     string
		f32, ann bool
	}{
		{"enld-f32", true, false},
		{"enld-ann", false, true},
		{"enld-ann-f32", true, true},
	} {
		cfg := wb.ENLDCfg
		cfg.Float32 = variant.f32
		cfg.ANN = variant.ann
		d := &core.ENLD{Platform: wb.Platform, Config: cfg}
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(shard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlatformSetup measures general-model initialization — the
// paper's "setup time".
func BenchmarkPlatformSetup(b *testing.B) {
	cfg := benchCfg(1)
	spec := dataset.CIFAR100Like(1).Scale(cfg.DataScale)
	data, err := spec.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inv := data.Clone()
		b.StartTimer()
		if _, err := NewPlatform(inv, DefaultPlatformConfig(spec.Classes, spec.FeatureDim, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNN compares the per-class KD-tree against the brute-force scan
// for the k-nearest queries of contrastive sampling (§IV-D's complexity
// argument: O(k·|A|·log|H'|) versus O(c·|A|·|H'|)).
func BenchmarkKNN(b *testing.B) {
	rng := mat.NewRNG(5)
	const dim, k = 64, 3
	for _, n := range []int{256, 1024, 4096} {
		pts := make([]kdtree.Point, n)
		for i := range pts {
			pts[i] = kdtree.Point{Vec: rng.NormVec(make([]float64, dim), 0, 1), Payload: i}
		}
		query := rng.NormVec(make([]float64, dim), 0, 1)
		tree, err := kdtree.Build(pts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("kdtree/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tree.KNearest(query, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("into/n="+itoa(n), func(b *testing.B) {
			// The allocation-free variant the parallel sampling fan-out uses:
			// one warmed-up scratch per worker.
			var s kdtree.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tree.KNearestInto(&s, query, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("brute/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kdtree.BruteKNearest(pts, query, k)
			}
		})
	}
}

// BenchmarkANN compares the approximate IVF index against the exact KD-tree
// on the same query stream and reports the achieved recall@k per size, so
// the speed and accuracy sides of the approximation land in the same
// BENCH_ci.json row.
func BenchmarkANN(b *testing.B) {
	rng := mat.NewRNG(5)
	const dim, k = 64, 3
	// Clustered blobs, the shape of per-class feature activations the
	// contrastive sampler indexes (uniform Gaussian data is IVF's worst
	// case and not what the pipeline sees).
	means := make([][]float64, 12)
	for c := range means {
		means[c] = rng.NormVec(make([]float64, dim), 0, 4)
	}
	for _, n := range []int{256, 1024, 4096} {
		pts := make([]kdtree.Point, n)
		for i := range pts {
			v := rng.NormVec(make([]float64, dim), 0, 1)
			for d, mv := range means[i%len(means)] {
				v[d] += mv
			}
			pts[i] = kdtree.Point{Vec: v, Payload: i}
		}
		query := append([]float64(nil), means[3]...)
		for d := range query {
			query[d] += rng.Norm()
		}
		idx, err := ann.Build(pts, ann.Params{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("build/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ann.Build(pts, ann.Params{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("query/n="+itoa(n), func(b *testing.B) {
			var s ann.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := idx.KNearestInto(&s, query, k); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var sr ann.Scratch
			got, err := idx.KNearestInto(&sr, query, k)
			if err != nil {
				b.Fatal(err)
			}
			exact := make(map[int]bool, k)
			for _, nb := range kdtree.BruteKNearest(pts, query, k) {
				exact[nb.Point.Payload] = true
			}
			hits := 0
			for _, nb := range got {
				if exact[nb.Point.Payload] {
					hits++
				}
			}
			b.ReportMetric(float64(hits)/float64(k), "recall@k")
		})
	}
}

// BenchmarkKDTreeBuild measures index construction, which contrastive
// sampling repeats once per fine-grained NLD iteration.
func BenchmarkKDTreeBuild(b *testing.B) {
	rng := mat.NewRNG(6)
	const dim = 64
	pts := make([]kdtree.Point, 2048)
	for i := range pts {
		pts[i] = kdtree.Point{Vec: rng.NormVec(make([]float64, dim), 0, 1), Payload: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kdtree.Build(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEpoch measures one epoch of the neural substrate — the unit
// of work both TopoFilter's training and ENLD's fine-tuning are built from —
// at several gradient-worker counts. Weights come out bit-identical at every
// count (see nn.TrainConfig.Workers), so the sub-benchmarks measure pure
// scheduling overhead/speedup; benchsummary pairs workers=1 against
// workers=4 in BENCH_ci.json.
func BenchmarkTrainEpoch(b *testing.B) {
	rng := mat.NewRNG(7)
	net, err := nn.Build(nn.SimResNet110, 48, 100, rng)
	if err != nil {
		b.Fatal(err)
	}
	examples := make([]nn.Example, 512)
	for i := range examples {
		examples[i] = nn.Example{
			X:      rng.NormVec(make([]float64, 48), 0, 1),
			Target: nn.OneHot(i%100, 100),
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			trainer := nn.NewTrainer(net, nn.NewSGD(0.01, 0.9, 1e-4))
			for i := 0; i < b.N; i++ {
				if _, err := trainer.Run(examples, nn.TrainConfig{
					Epochs: 1, BatchSize: 32, Seed: uint64(i), Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Same single-worker epoch with an observability registry attached —
	// every batch observes a duration and a loss into histograms; benchsummary
	// gates the obs/workers=1 ratio to keep metric recording off the
	// per-sample hot path (< 5% overhead).
	b.Run("obs", func(b *testing.B) {
		trainer := nn.NewTrainer(net, nn.NewSGD(0.01, 0.9, 1e-4))
		trainer.Obs = obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			if _, err := trainer.Run(examples, nn.TrainConfig{
				Epochs: 1, BatchSize: 32, Seed: uint64(i), Workers: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Same single-worker epoch with the numerical-health watchdog at its
	// default cadence; benchsummary gates the watchdog/workers=1 ratio to
	// keep the health checks off the per-sample hot path (< 10% overhead).
	b.Run("watchdog", func(b *testing.B) {
		trainer := nn.NewTrainer(net, nn.NewSGD(0.01, 0.9, 1e-4))
		for i := 0; i < b.N; i++ {
			if _, err := trainer.Run(examples, nn.TrainConfig{
				Epochs: 1, BatchSize: 32, Seed: uint64(i), Workers: 1,
				Watchdog: nn.WatchdogConfig{Enabled: true},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkForward measures inference cost — the unit behind the ambiguous/
// high-quality re-scoring of each ENLD iteration: one sample at a time
// (single) and a whole shard-sized batch fanned out over workers.
func BenchmarkForward(b *testing.B) {
	rng := mat.NewRNG(8)
	net, err := nn.Build(nn.SimResNet110, 48, 100, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := rng.NormVec(make([]float64, 48), 0, 1)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net.Evaluate(x)
		}
	})
	xs := make([][]float64, 256)
	for i := range xs {
		xs[i] = rng.NormVec(make([]float64, 48), 0, 1)
	}
	for _, workers := range []int{1, 4} {
		b.Run("batch-workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.EvaluateBatch(xs, workers)
			}
		})
	}
}

// BenchmarkGemm measures the blocked kernels across the shapes the batched
// passes hit: square products plus the forward (NT, batch×in · out×in) and
// weight-gradient (TN, batch×out ᵀ· batch×in) shapes of the SimResNet110
// layers at the trainer's chunk size and the inference chunk size.
func BenchmarkGemm(b *testing.B) {
	rng := mat.NewRNG(9)
	newM := func(rows, cols int) *mat.Matrix {
		m := mat.NewMatrix(rows, cols)
		rng.NormVec(m.Data, 0, 1)
		return m
	}
	for _, n := range []int{16, 64, 128} {
		A, B, C := newM(n, n), newM(n, n), mat.NewMatrix(n, n)
		b.Run("nn/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				C.Zero()
				mat.Gemm(C, A, B)
			}
		})
	}
	// Parallel variants: output rows fanned over a pool, bit-identical to
	// the sequential kernel at every worker count. At n=128 the product sits
	// above parGemmMinWork, so the split actually engages; real speedup
	// needs real cores (see the native-GOMAXPROCS CI leg).
	for _, workers := range []int{1, 4} {
		pool := parallel.New(workers)
		A, B, C := newM(128, 128), newM(128, 128), mat.NewMatrix(128, 128)
		b.Run("par/workers="+itoa(workers)+"/n=128", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				C.Zero()
				mat.ParallelGemm(pool, C, A, B)
			}
		})
	}
	{
		pool := parallel.New(4)
		A, B2 := newM(64, 128), newM(96, 128)
		C := mat.NewMatrix(64, 96)
		b.Run("par-nt/workers=4/batch=64-128x96", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				C.Zero()
				mat.ParallelGemmNT(pool, C, A, B2)
			}
		})
	}
	for _, bench := range []struct {
		name         string
		m, n, k      int
		kind         func(C, A, B *mat.Matrix)
		aRows, aCols int
		bRows, bCols int
	}{
		// Forward Y(batch×out) += X(batch×in)·W(out×in)ᵀ, trainer chunk.
		{"nt/batch=8-128x96", 8, 96, 128, mat.GemmNT, 8, 128, 96, 128},
		// Forward at the inference chunk size.
		{"nt/batch=64-128x96", 64, 96, 128, mat.GemmNT, 64, 128, 96, 128},
		// Weight gradient gW(out×in) += delta(batch×out)ᵀ·X(batch×in).
		{"tn/batch=64-96x128", 96, 128, 64, mat.GemmTN, 64, 96, 64, 128},
	} {
		A, B2 := newM(bench.aRows, bench.aCols), newM(bench.bRows, bench.bCols)
		C := mat.NewMatrix(bench.m, bench.n)
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				C.Zero()
				bench.kind(C, A, B2)
			}
		})
	}
}

// BenchmarkForwardBatch pins the tentpole win at its source: one batched
// forward pass over an inference chunk versus the same samples pushed through
// the per-sample path one at a time.
func BenchmarkForwardBatch(b *testing.B) {
	rng := mat.NewRNG(10)
	net, err := nn.Build(nn.SimResNet110, 48, 100, rng)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([][]float64, 64)
	for i := range xs {
		xs[i] = rng.NormVec(make([]float64, 48), 0, 1)
	}
	b.Run("persample", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				net.Evaluate(x)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		var s nn.BatchScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.ForwardBatch(&s, xs)
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
